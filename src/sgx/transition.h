// Enclave-mode tracking and transition cost injection.
//
// Real SGX enclave transitions (EENTER/EEXIT plus the SDK trampolines) cost
// thousands of cycles. The simulator injects that cost as a real busy-wait
// so that code paths whose *structure* depends on transitions — SDK mutexes
// that leave the enclave to sleep, OCALL-based allocation — exhibit the
// paper's behaviour (Section 4.4) without SGX silicon.
//
// A thread is "in enclave mode" between EnclaveEnter() and EnclaveExit();
// the flag is thread-local, mirroring how each logical processor enters an
// enclave independently.

#ifndef SGXB_SGX_TRANSITION_H_
#define SGXB_SGX_TRANSITION_H_

#include <cstdint>

namespace sgxb::sgx {

/// \brief Counters of simulated transition activity; one global instance,
/// resettable by benchmarks to isolate a measurement window.
struct TransitionStats {
  uint64_t ecalls;
  uint64_t ocalls;
  uint64_t injected_cycles;
};

TransitionStats GetTransitionStats();
void ResetTransitionStats();

/// \brief True if the calling thread is currently executing (simulated)
/// enclave code.
bool InEnclaveMode();

/// \brief Enters enclave mode on this thread, injecting the EENTER cost.
/// `charge_cycles` defaults to the calibrated transition cost.
void EnclaveEnter();

/// \brief Leaves enclave mode, injecting the EEXIT cost.
void EnclaveExit();

/// \brief Performs an OCALL round-trip (exit + re-enter) without running
/// any untrusted code; used by the SDK mutex and allocator simulations.
/// No-op if the thread is not in enclave mode.
void OcallRoundTrip();

/// \brief RAII enclave-mode scope (one ECALL).
class ScopedEcall {
 public:
  ScopedEcall() { EnclaveEnter(); }
  ~ScopedEcall() { EnclaveExit(); }
  ScopedEcall(const ScopedEcall&) = delete;
  ScopedEcall& operator=(const ScopedEcall&) = delete;
};

/// \brief Injects transition delays only when cost injection is enabled
/// (default on; disable with SGXBENCH_NO_INJECT=1 for functional tests
/// that should run fast).
bool CostInjectionEnabled();

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_TRANSITION_H_
