// Software stand-in for the SGXv2 memory encryption engine (MEE).
//
// On real hardware, EPC cache lines are encrypted/decrypted transparently
// by the memory controller. The simulator cannot intercept loads, so the
// performance cost of the MEE is handled by the cost model; this class
// exists so that *functional* properties hold in tests: data placed in the
// simulated EPC can be sealed (encrypted at rest) and unsealed, and the
// ciphertext differs from the plaintext. The cipher is a keyed XOR
// keystream per 64-byte line — deliberately simple and NOT
// cryptographically strong (see DESIGN.md, Non-goals).

#ifndef SGXB_SGX_MEE_H_
#define SGXB_SGX_MEE_H_

#include <cstddef>
#include <cstdint>

namespace sgxb::sgx {

class MemoryEncryptionEngine {
 public:
  explicit MemoryEncryptionEngine(uint64_t key = 0x5367785632204d45ull)
      : key_(key) {}

  /// \brief Encrypts `bytes` bytes in place. `bytes` may be any size;
  /// the keystream is derived from (key, base_offset + position).
  void Encrypt(void* data, size_t bytes, uint64_t base_offset = 0) const {
    Apply(data, bytes, base_offset);
  }

  /// \brief Decrypts in place (the keystream cipher is an involution).
  void Decrypt(void* data, size_t bytes, uint64_t base_offset = 0) const {
    Apply(data, bytes, base_offset);
  }

 private:
  void Apply(void* data, size_t bytes, uint64_t base_offset) const;

  uint64_t key_;
};

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_MEE_H_
