#include "sgx/enclave.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/calibration.h"

namespace sgxb::sgx {

namespace {
size_t RoundUpToPage(size_t bytes) {
  return (bytes + kEpcPageSize - 1) & ~(kEpcPageSize - 1);
}

// Buffers handed out by Enclave::Allocate credit the enclave from their
// destructor, which may run after DestroyEnclave (an operator result that
// outlives its enclave, teardown-order accidents in tests). Crediting is
// gated on this registry so a late release frees the host memory but
// skips the accounting of an enclave that no longer exists.
std::mutex g_live_enclaves_mu;
std::unordered_set<Enclave*>& LiveEnclaves() {
  static auto* live = new std::unordered_set<Enclave*>();
  return *live;
}

// Process-wide EDMM activity mirrored into the obs registry (summed over
// all enclaves), so query reports can attribute page churn to a query
// window without holding an enclave pointer.
obs::Counter& EdmmPagesAdded() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrEdmmPagesAdded);
  return *c;
}
obs::Counter& EdmmPagesTrimmed() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrEdmmPagesTrimmed);
  return *c;
}
obs::Counter& EdmmInjectedNs() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrEdmmInjectedNs);
  return *c;
}
obs::Histogram& EdmmCommitNs() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram(obs::kHistEdmmCommitNs);
  return *h;
}
}  // namespace

Enclave::Enclave(const EnclaveConfig& config) : config_(config) {
  heap_committed_.store(RoundUpToPage(config.initial_heap_bytes),
                        std::memory_order_relaxed);
}

Result<Enclave*> Enclave::Create(const EnclaveConfig& config) {
  const auto& cal = perf::CalibrationParams::Default();
  if (config.initial_heap_bytes > cal.epc_per_socket_bytes) {
    return Status::ResourceExhausted(
        "initial enclave heap exceeds the per-socket EPC capacity");
  }
  if (config.dynamic && config.max_heap_bytes < config.initial_heap_bytes) {
    return Status::InvalidArgument(
        "max_heap_bytes must be >= initial_heap_bytes for dynamic "
        "enclaves");
  }
  auto* enclave = new Enclave(config);
  {
    std::lock_guard<std::mutex> lock(g_live_enclaves_mu);
    LiveEnclaves().insert(enclave);
  }
  return enclave;
}

Enclave::~Enclave() = default;

void DestroyEnclave(Enclave* enclave) {
  if (enclave == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(g_live_enclaves_mu);
    LiveEnclaves().erase(enclave);
  }
  delete enclave;
}

Status Enclave::CommitPages(size_t new_reserved) {
  if (new_reserved <= heap_committed_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  // Slow path: serialize growth so concurrent growers neither shrink the
  // committed size nor double-charge the same pages.
  std::lock_guard<std::mutex> lock(commit_mu_);
  return CommitPagesLocked(new_reserved);
}

Status Enclave::CommitPagesLocked(size_t new_reserved) {
  const auto& cal = perf::CalibrationParams::Default();
  size_t committed = heap_committed_.load(std::memory_order_relaxed);
  if (new_reserved <= committed) return Status::OK();

  if (!config_.dynamic) {
    return Status::OutOfMemory(
        "enclave heap exhausted (" + std::to_string(new_reserved) + " of " +
        std::to_string(committed) +
        " bytes) and EDMM dynamic growth is disabled");
  }
  size_t target = RoundUpToPage(new_reserved);
  if (target > config_.max_heap_bytes) {
    return Status::OutOfMemory("enclave heap would exceed max_heap_bytes");
  }
  if (target > cal.epc_per_socket_bytes) {
    return Status::ResourceExhausted(
        "enclave heap would exceed the per-socket EPC");
  }

  // EDMM growth: each added 4 KiB page pays the EAUG + EACCEPT + zeroing
  // cost. The delay is injected for real so that dynamic allocation slows
  // down the surrounding algorithm exactly where it would on hardware.
  size_t pages = (target - committed) / kEpcPageSize;
  double ns = static_cast<double>(pages) * cal.edmm_page_add_ns;
  {
    obs::ObsSpan span("edmm_commit", "sgx");
    if (CostInjectionEnabled() && ns > 0) {
      SpinForCycles(static_cast<uint64_t>(ns * 1e-9 * TscFrequencyHz()));
    }
  }
  edmm_pages_added_.fetch_add(pages, std::memory_order_relaxed);
  edmm_injected_ns_.fetch_add(static_cast<uint64_t>(ns),
                              std::memory_order_relaxed);
  EdmmPagesAdded().Add(pages);
  EdmmInjectedNs().Add(static_cast<uint64_t>(ns));
  EdmmCommitNs().Record(static_cast<uint64_t>(ns));
  heap_committed_.store(target, std::memory_order_release);
  return Status::OK();
}

Status Enclave::ChargeAlloc(size_t bytes) {
  // The EPC is managed in 4 KiB pages, so the heap accounting must be too:
  // charging raw bytes against the page-granular committed size would let
  // sub-page allocations pack tighter than the hardware allows and report
  // a heap_used that no sequence of page commits can produce.
  //
  // Reservation ordering keeps memory_stats coherent: the charge is
  // admitted against heap_reserved_ first, pages are committed to cover
  // the reservation, and only then does heap_used_ advance. heap_used_ <=
  // heap_committed_ therefore holds at every instant — the old scheme
  // bumped heap_used_ *before* committing, so a concurrent reader could
  // observe more heap in use than the enclave had pages for.
  const size_t charged = RoundUpToPage(bytes);
  if (config_.dynamic && config_.edmm_trim) {
    // Trim-enabled enclaves serialize the whole charge against TrimPages:
    // with a lock-free reservation, a concurrent trim could snapshot
    // heap_reserved_ just before this charge reserves and shrink the
    // committed heap below memory the charge then publishes as used.
    std::lock_guard<std::mutex> lock(commit_mu_);
    const size_t new_reserved =
        heap_reserved_.fetch_add(charged, std::memory_order_relaxed) +
        charged;
    Status st = CommitPagesLocked(new_reserved);
    if (!st.ok()) {
      heap_reserved_.fetch_sub(charged, std::memory_order_relaxed);
      return st;
    }
    heap_used_.fetch_add(charged, std::memory_order_release);
    return Status::OK();
  }
  const size_t new_reserved =
      heap_reserved_.fetch_add(charged, std::memory_order_relaxed) +
      charged;
  Status st = CommitPages(new_reserved);
  if (!st.ok()) {
    heap_reserved_.fetch_sub(charged, std::memory_order_relaxed);
    return st;
  }
  // Release so a memory_stats() reader that acquires this used value also
  // sees the committed store (direct or via CommitPages' acquire of an
  // earlier grower's release) that covers it.
  heap_used_.fetch_add(charged, std::memory_order_release);
  return Status::OK();
}

void Enclave::ReleaseTrustedBuffer(void* ctx, void* data, size_t bytes) {
  auto* enclave = static_cast<Enclave*>(ctx);
  {
    // Credit under the registry lock so the enclave cannot be destroyed
    // between the liveness check and the NotifyFree.
    std::lock_guard<std::mutex> lock(g_live_enclaves_mu);
    if (LiveEnclaves().count(enclave) != 0) enclave->NotifyFree(bytes);
  }
  std::free(data);
}

Result<AlignedBuffer> Enclave::Allocate(size_t bytes, size_t alignment) {
  if (alignment < kCacheLineSize || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 64");
  }
  SGXB_RETURN_NOT_OK(ChargeAlloc(bytes));
  if (bytes == 0) {
    NotifyFree(bytes);  // zero pages charged; keep the call balanced
    return AlignedBuffer::View(nullptr, 0, MemoryRegion::kEnclave,
                               config_.numa_node);
  }
  const size_t padded = (bytes + alignment - 1) & ~(alignment - 1);
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) {
    NotifyFree(bytes);
    return Status::OutOfMemory("aligned_alloc of " + std::to_string(padded) +
                               " bytes failed");
  }
  return AlignedBuffer::FromResource(p, bytes, MemoryRegion::kEnclave,
                                     config_.numa_node,
                                     &ReleaseTrustedBuffer, this);
}

void Enclave::NotifyFree(size_t bytes) {
  const size_t charged = RoundUpToPage(bytes);
  // Clamp instead of blindly subtracting: a double NotifyFree used to wrap
  // heap_used_ past zero, corrupting memory_stats() and every later OOM
  // check. Debug builds assert so the offending call site is found.
  size_t used = heap_used_.load(std::memory_order_relaxed);
  size_t dec;
  do {
    assert(charged <= used && "NotifyFree without a matching Allocate");
    dec = std::min(charged, used);
  } while (!heap_used_.compare_exchange_weak(used, used - dec,
                                             std::memory_order_relaxed));
  // heap_used_ drops before the reservation so TrimPages — which sizes the
  // committed heap off heap_reserved_ — can never shrink below live usage.
  heap_reserved_.fetch_sub(dec, std::memory_order_relaxed);
  if (config_.dynamic && config_.edmm_trim) TrimPages();
}

void Enclave::TrimPages() {
  // Return committed-but-unused pages, but never below the EADD'ed
  // initial heap: static pages stay resident for the enclave's lifetime.
  // The floor is the *reserved* size, not the used size: a concurrent
  // ChargeAlloc may have committed pages for a reservation it has not yet
  // published into heap_used_, and trimming those would break the
  // used <= committed invariant the moment it publishes.
  std::lock_guard<std::mutex> lock(commit_mu_);
  const size_t floor_bytes = RoundUpToPage(config_.initial_heap_bytes);
  const size_t target =
      std::max(floor_bytes,
               RoundUpToPage(heap_reserved_.load(std::memory_order_relaxed)));
  const size_t committed = heap_committed_.load(std::memory_order_relaxed);
  if (target >= committed) return;
  const uint64_t pages = (committed - target) / kEpcPageSize;
  edmm_pages_trimmed_.fetch_add(pages, std::memory_order_relaxed);
  EdmmPagesTrimmed().Add(pages);
  obs::TraceInstant("edmm_trim", "sgx");
  heap_committed_.store(target, std::memory_order_release);
}

EnclaveMemoryStats Enclave::memory_stats() const {
  EnclaveMemoryStats stats;
  if (config_.dynamic && config_.edmm_trim) {
    // Trims make heap_committed_ non-monotone, so a lock-free pair of
    // loads can tear (read a large used, then a committed that a trim
    // shrank after frees). All committed mutations and trim-enclave
    // charges hold commit_mu_, so under it the pair is coherent.
    std::lock_guard<std::mutex> lock(commit_mu_);
    stats.heap_committed_bytes =
        heap_committed_.load(std::memory_order_relaxed);
    stats.heap_used_bytes = heap_used_.load(std::memory_order_relaxed);
  } else {
    // Without trims committed is monotone non-decreasing and used only
    // grows after the growth path has raised committed (see ChargeAlloc).
    // Loading used *first* therefore yields a coherent pair: committed
    // read afterwards is at least the value that covered that used.
    stats.heap_used_bytes = heap_used_.load(std::memory_order_acquire);
    stats.heap_committed_bytes =
        heap_committed_.load(std::memory_order_acquire);
  }
  stats.edmm_pages_added = edmm_pages_added_.load(std::memory_order_relaxed);
  stats.edmm_pages_trimmed =
      edmm_pages_trimmed_.load(std::memory_order_relaxed);
  stats.edmm_injected_ns = static_cast<double>(
      edmm_injected_ns_.load(std::memory_order_relaxed));
  assert(stats.heap_used_bytes <= stats.heap_committed_bytes &&
         "memory_stats tearing: heap_used exceeds heap_committed");
  return stats;
}

}  // namespace sgxb::sgx
