#include "sgx/mee.h"

#include <cstring>

#include "common/random.h"

namespace sgxb::sgx {

void MemoryEncryptionEngine::Apply(void* data, size_t bytes,
                                   uint64_t base_offset) const {
  auto* p = static_cast<uint8_t*>(data);
  size_t i = 0;
  // Whole 8-byte words.
  for (; i + 8 <= bytes; i += 8) {
    uint64_t state = key_ ^ (base_offset + i);
    uint64_t ks = SplitMix64(state);
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    word ^= ks;
    std::memcpy(p + i, &word, 8);
  }
  // Tail bytes.
  if (i < bytes) {
    uint64_t state = key_ ^ (base_offset + i);
    uint64_t ks = SplitMix64(state);
    for (size_t j = 0; i + j < bytes; ++j) {
      p[i + j] ^= static_cast<uint8_t>(ks >> (8 * j));
    }
  }
}

}  // namespace sgxb::sgx
