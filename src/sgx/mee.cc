#include "sgx/mee.h"

#include <cstring>

#include "common/random.h"

namespace sgxb::sgx {

namespace {

// Keystream word covering absolute byte offsets [block, block + 8) where
// block is 8-byte aligned. Deriving the keystream from the *absolute*
// position (not the position within one Apply call) makes chunked
// encryption equal one-shot encryption for any chunk split: the spill
// path encrypts partitions in pieces and decrypts them in different
// pieces, so this equivalence is load-bearing, not cosmetic.
inline uint64_t KeystreamWord(uint64_t key, uint64_t block) {
  uint64_t state = key ^ block;
  return SplitMix64(state);
}

}  // namespace

void MemoryEncryptionEngine::Apply(void* data, size_t bytes,
                                   uint64_t base_offset) const {
  auto* p = static_cast<uint8_t*>(data);
  uint64_t off = base_offset;
  const uint64_t end = base_offset + bytes;

  // Unaligned head: bytes up to the next 8-byte boundary of the absolute
  // offset, XORed with the matching lanes of that block's keystream word.
  if (off % 8 != 0) {
    const uint64_t block = off & ~7ull;
    const uint64_t ks = KeystreamWord(key_, block);
    while (off < end && off % 8 != 0) {
      *p++ ^= static_cast<uint8_t>(ks >> (8 * (off & 7)));
      ++off;
    }
  }
  // Whole aligned words.
  while (off + 8 <= end) {
    const uint64_t ks = KeystreamWord(key_, off);
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= ks;
    std::memcpy(p, &word, 8);
    p += 8;
    off += 8;
  }
  // Tail bytes of the final partial word.
  if (off < end) {
    const uint64_t ks = KeystreamWord(key_, off);
    for (uint64_t j = 0; off + j < end; ++j) {
      p[j] ^= static_cast<uint8_t>(ks >> (8 * ((off + j) & 7)));
    }
  }
}

}  // namespace sgxb::sgx
