// Simulated SGX SDK mutex (sgx_thread_mutex_t).
//
// The SDK mutex sends a contended thread *outside the enclave* to sleep on
// a futex, costing two enclave transitions per sleep and two more per wake.
// Under short critical sections this dominates runtime and produces the
// avalanche effect the paper describes (Section 4.4, Figure 10). This class
// reproduces that structure: a short optimistic spin, then an OCALL
// round-trip charge plus a real blocking wait, and a wake path that charges
// the owner for waking the next thread.
//
// Satisfies the C++ Lockable requirements.

#ifndef SGXB_SGX_SGX_MUTEX_H_
#define SGXB_SGX_SGX_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "sgx/transition.h"

namespace sgxb::sgx {

class SgxSdkMutex {
 public:
  SgxSdkMutex() = default;
  SgxSdkMutex(const SgxSdkMutex&) = delete;
  SgxSdkMutex& operator=(const SgxSdkMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  // Spin budget before the SDK parks the thread (the real SDK spins a few
  // hundred iterations before issuing the sleep OCALL).
  static constexpr int kSpinBudget = 256;

  std::mutex mu_;
  std::condition_variable cv_;
  bool locked_ = false;
  int waiters_ = 0;
};

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_SGX_MUTEX_H_
