// Builds the task queue a join should use for a given execution setting.
//
// Inside the enclave, the "mutex" option uses the simulated SGX SDK mutex
// (which sleeps via OCALL); natively it uses std::mutex. This is exactly
// the contrast of Figure 10.

#ifndef SGXB_SGX_QUEUE_FACTORY_H_
#define SGXB_SGX_QUEUE_FACTORY_H_

#include <memory>

#include "common/types.h"
#include "sync/task_queue.h"

namespace sgxb::sgx {

/// \brief Creates a task queue of `kind` with room for `capacity` tasks.
/// `setting` selects the mutex implementation for kMutex queues.
std::unique_ptr<TaskQueue> MakeTaskQueue(TaskQueueKind kind,
                                         size_t capacity,
                                         ExecutionSetting setting);

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_QUEUE_FACTORY_H_
