// Chunk-version provider interface for live-update (HTAP) columns.
//
// The write path (src/txn/) maintains copy-on-write version chunks over a
// base column; the read path must stay the storage layer's ColumnView so
// query bodies, fused pipelines, and the planner run unchanged against
// mutating tables. This interface is the seam between the two: storage
// depends only on this abstract shape, txn implements it, and ColumnView
// carries a (source, epoch) overlay that resolves each chunk to either a
// version array or the base column (docs/htap.md).
//
// Thread-safety contract: ChunkVersion may be called concurrently with
// committing writers. The returned pointer must stay valid — and the
// pointed-to values immutable — for as long as `epoch` stays pinned in
// the implementation's epoch registry (epoch-based reclamation; see
// txn::EpochRegistry).

#ifndef SGXB_STORAGE_VERSION_SOURCE_H_
#define SGXB_STORAGE_VERSION_SOURCE_H_

#include <cstddef>
#include <cstdint>

namespace sgxb::storage {

template <typename T>
class VersionSource {
 public:
  virtual ~VersionSource() = default;

  /// \brief Rows per version chunk (constant for the column's lifetime;
  /// the last chunk may be shorter).
  virtual size_t chunk_rows() const = 0;

  /// \brief The values of chunk `chunk` visible at commit epoch `epoch`,
  /// or nullptr when the base column's values are current for that chunk
  /// at that epoch (no committed version with commit epoch <= `epoch`).
  /// The pointer addresses the chunk's first row.
  virtual const T* ChunkVersion(size_t chunk, uint64_t epoch) const = 0;
};

}  // namespace sgxb::storage

#endif  // SGXB_STORAGE_VERSION_SOURCE_H_
