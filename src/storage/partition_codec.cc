#include "storage/partition_codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "scan/packed_column.h"

namespace sgxb::storage {

namespace {

// Dictionary encoding caps out where the code width stops paying for the
// dictionary itself; u8 columns can never exceed 256 distinct anyway.
constexpr size_t kMaxDictSize = 4096;

inline size_t RoundUp8(size_t n) { return (n + 7) & ~size_t{7}; }

inline int BitsFor(uint32_t max_value) {
  int w = 1;
  while (w < 31 && (max_value >> w) != 0) ++w;
  return w;
}

// Bytes of a word-aligned guard-bit packing of n values at width w.
inline size_t PackedBytes(size_t n, int w) {
  const int k = 64 / (w + 1);
  return (n + k - 1) / k * sizeof(uint64_t);
}

Status CopyPackedWords(const scan::PackedColumn& packed, uint8_t* dst) {
  std::memcpy(dst, packed.words(), packed.num_words() * sizeof(uint64_t));
  return Status::OK();
}

// Decodes a guard-bit packed stream (as laid out by scan::PackedColumn)
// from possibly-unaligned payload bytes. `emit(i, value)` receives the
// frame-relative field value. The field width is a template parameter so
// the full-word inner loop has compile-time trip count and shift
// amounts — the decode side of a reload is on the paging fast path and
// must beat the decrypt savings it buys (bench_ext_oepc's wall-clock
// gate), which a runtime-width scalar loop does not.
template <int FW, typename Emit>
void UnpackFieldsFixed(const uint8_t* payload, size_t n, Emit&& emit) {
  constexpr int k = 64 / FW;
  constexpr uint32_t mask =
      FW == 32 ? 0x7fffffffu : (1u << (FW - 1)) - 1;
  const size_t full_words = n / k;
  size_t i = 0;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word;
    std::memcpy(&word, payload + w * sizeof(uint64_t), sizeof(word));
    for (int f = 0; f < k; ++f) {
      emit(i + f, static_cast<uint32_t>(word >> (f * FW)) & mask);
    }
    i += k;
  }
  if (i < n) {
    uint64_t word;
    std::memcpy(&word, payload + full_words * sizeof(uint64_t),
                sizeof(word));
    for (int f = 0; i < n; ++f, ++i) {
      emit(i, static_cast<uint32_t>(word >> (f * FW)) & mask);
    }
  }
}

template <typename Emit>
void UnpackFields(const uint8_t* payload, size_t n, int bit_width,
                  Emit&& emit) {
  switch (bit_width + 1) {
#define SGXB_UNPACK_CASE(FW) \
  case FW:                   \
    return UnpackFieldsFixed<FW>(payload, n, emit);
    SGXB_UNPACK_CASE(2)
    SGXB_UNPACK_CASE(3)
    SGXB_UNPACK_CASE(4)
    SGXB_UNPACK_CASE(5)
    SGXB_UNPACK_CASE(6)
    SGXB_UNPACK_CASE(7)
    SGXB_UNPACK_CASE(8)
    SGXB_UNPACK_CASE(9)
    SGXB_UNPACK_CASE(10)
    SGXB_UNPACK_CASE(11)
    SGXB_UNPACK_CASE(12)
    SGXB_UNPACK_CASE(13)
    SGXB_UNPACK_CASE(14)
    SGXB_UNPACK_CASE(15)
    SGXB_UNPACK_CASE(16)
    SGXB_UNPACK_CASE(17)
    SGXB_UNPACK_CASE(18)
    SGXB_UNPACK_CASE(19)
    SGXB_UNPACK_CASE(20)
    SGXB_UNPACK_CASE(21)
    SGXB_UNPACK_CASE(22)
    SGXB_UNPACK_CASE(23)
    SGXB_UNPACK_CASE(24)
    SGXB_UNPACK_CASE(25)
    SGXB_UNPACK_CASE(26)
    SGXB_UNPACK_CASE(27)
    SGXB_UNPACK_CASE(28)
    SGXB_UNPACK_CASE(29)
    SGXB_UNPACK_CASE(30)
    SGXB_UNPACK_CASE(31)
    SGXB_UNPACK_CASE(32)
#undef SGXB_UNPACK_CASE
    default:
      break;
  }
  // bit_width 0 cannot occur (BitsFor returns >= 1); keep a generic
  // fallback anyway so a corrupt header fails soft, not UB.
  const int fw = bit_width + 1;
  const int k = 64 / fw;
  const uint32_t mask =
      bit_width >= 31 ? 0x7fffffffu : (1u << bit_width) - 1;
  size_t i = 0;
  for (size_t word_idx = 0; i < n; ++word_idx) {
    uint64_t word;
    std::memcpy(&word, payload + word_idx * sizeof(uint64_t), sizeof(word));
    for (int f = 0; f < k && i < n; ++f, ++i) {
      emit(i, static_cast<uint32_t>(word >> (f * fw)) & mask);
    }
  }
}

}  // namespace

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kRaw:
      return "raw";
    case Encoding::kForPacked:
      return "for_packed";
    case Encoding::kDict:
      return "dict";
  }
  return "unknown";
}

Result<PartitionImage> EncodePartition(const void* values, size_t num_values,
                                       size_t elem_size, bool allow_compress,
                                       mem::MemoryResource* payload_resource) {
  if (num_values == 0 || num_values > 0xffffffffu) {
    return Status::InvalidArgument("partition must hold 1..2^32-1 values");
  }
  if (elem_size != 1 && elem_size != 4) {
    return Status::InvalidArgument("codec handles 1- or 4-byte elements");
  }
  if (payload_resource == nullptr) payload_resource = mem::Untrusted();

  // Widen to u32 once; all candidate encodings work in the u32 domain.
  std::vector<uint32_t> widened;
  const uint32_t* vals = nullptr;
  if (elem_size == 1) {
    const auto* p = static_cast<const uint8_t*>(values);
    widened.assign(p, p + num_values);
    vals = widened.data();
  } else {
    vals = static_cast<const uint32_t*>(values);
  }

  const size_t raw_bytes = num_values * elem_size;
  Encoding choice = Encoding::kRaw;
  size_t best_bytes = raw_bytes;

  uint32_t min = vals[0];
  uint32_t max = vals[0];
  for (size_t i = 1; i < num_values; ++i) {
    min = std::min(min, vals[i]);
    max = std::max(max, vals[i]);
  }

  int for_width = 0;
  size_t dict_size = 0;
  int code_width = 0;
  std::vector<uint32_t> dict;
  if (allow_compress) {
    const uint64_t range = static_cast<uint64_t>(max) - min;
    if (range <= 0x7fffffffu) {
      for_width = BitsFor(static_cast<uint32_t>(range));
      const size_t for_bytes = PackedBytes(num_values, for_width);
      if (for_bytes < best_bytes) {
        choice = Encoding::kForPacked;
        best_bytes = for_bytes;
      }
    }
    dict.assign(vals, vals + num_values);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    if (dict.size() <= kMaxDictSize) {
      dict_size = dict.size();
      code_width = BitsFor(static_cast<uint32_t>(dict_size - 1));
      const size_t dict_bytes = RoundUp8(dict_size * elem_size) +
                                PackedBytes(num_values, code_width);
      if (dict_bytes < best_bytes) {
        choice = Encoding::kDict;
        best_bytes = dict_bytes;
      }
    }
  }

  PartitionImage image;
  image.encoding = choice;
  image.num_values = static_cast<uint32_t>(num_values);
  image.elem_size = static_cast<uint8_t>(elem_size);
  auto payload = payload_resource->AllocateZeroed(best_bytes);
  if (!payload.ok()) return payload.status();
  image.payload = std::move(payload).value();
  auto* dst = image.payload.As<uint8_t>();

  switch (choice) {
    case Encoding::kRaw:
      std::memcpy(dst, values, raw_bytes);
      break;
    case Encoding::kForPacked: {
      auto packed =
          scan::PackedColumn::PackFrameOfReference(vals, num_values);
      if (!packed.ok()) return packed.status();
      image.bit_width = static_cast<uint8_t>(packed.value().bit_width());
      image.frame_min = packed.value().frame_min();
      SGXB_RETURN_NOT_OK(CopyPackedWords(packed.value(), dst));
      break;
    }
    case Encoding::kDict: {
      image.dict_size = static_cast<uint32_t>(dict_size);
      image.bit_width = static_cast<uint8_t>(code_width);
      if (elem_size == 1) {
        for (size_t d = 0; d < dict_size; ++d) {
          dst[d] = static_cast<uint8_t>(dict[d]);
        }
      } else {
        std::memcpy(dst, dict.data(), dict_size * sizeof(uint32_t));
      }
      std::vector<uint32_t> codes(num_values);
      for (size_t i = 0; i < num_values; ++i) {
        codes[i] = static_cast<uint32_t>(
            std::lower_bound(dict.begin(), dict.end(), vals[i]) -
            dict.begin());
      }
      auto packed = scan::PackedColumn::Pack(codes.data(), num_values,
                                             code_width);
      if (!packed.ok()) return packed.status();
      SGXB_RETURN_NOT_OK(CopyPackedWords(
          packed.value(), dst + RoundUp8(dict_size * elem_size)));
      break;
    }
  }
  return image;
}

Status DecodePartition(const PartitionImage& image, const uint8_t* payload,
                       void* out) {
  const size_t n = image.num_values;
  switch (image.encoding) {
    case Encoding::kRaw:
      std::memcpy(out, payload, image.decoded_bytes());
      return Status::OK();
    case Encoding::kForPacked: {
      const uint32_t base = image.frame_min;
      if (image.elem_size == 1) {
        auto* o = static_cast<uint8_t*>(out);
        UnpackFields(payload, n, image.bit_width, [&](size_t i, uint32_t v) {
          o[i] = static_cast<uint8_t>(base + v);
        });
      } else {
        auto* o = static_cast<uint32_t*>(out);
        UnpackFields(payload, n, image.bit_width, [&](size_t i, uint32_t v) {
          o[i] = base + v;
        });
      }
      return Status::OK();
    }
    case Encoding::kDict: {
      const uint8_t* codes = payload + RoundUp8(static_cast<size_t>(
                                           image.dict_size) * image.elem_size);
      if (image.elem_size == 1) {
        const uint8_t* dict = payload;
        auto* o = static_cast<uint8_t*>(out);
        UnpackFields(codes, n, image.bit_width, [&](size_t i, uint32_t c) {
          o[i] = dict[c];
        });
      } else {
        auto* o = static_cast<uint32_t*>(out);
        UnpackFields(codes, n, image.bit_width, [&](size_t i, uint32_t c) {
          uint32_t v;
          std::memcpy(&v, payload + c * sizeof(uint32_t), sizeof(v));
          o[i] = v;
        });
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown partition encoding");
}

}  // namespace sgxb::storage
