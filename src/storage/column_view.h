// Column access that works over resident arrays, paged columns, and
// version-chunk overlays.
//
// Operators take ColumnView<T> instead of Column<T>& / raw pointers: a
// view either wraps resident memory (raw pointer + length — the implicit
// conversion from Column<T> keeps existing call sites compiling and the
// fast path a plain indexed load), a PagedColumn<T> whose partitions
// must be pinned before access, or either of those plus a *versioned
// overlay* — a (VersionSource, epoch) pair that resolves each fixed-size
// chunk to a committed copy-on-write version array or falls through to
// the base view (docs/htap.md). Two access patterns cover the operators:
//
//  - ForEachRun: sequential scans. Pins one partition at a time, hands the
//    kernel a (pointer, absolute base, count) run, and prefetches the next
//    partition before working the current one so the reload decrypt hides
//    behind the scan. With an overlay, runs additionally break at version
//    chunk boundaries.
//  - ColumnReader: positional access by row id. Caches the last pinned
//    partition (or version chunk); row-id lists produced by scans are
//    ascending, so nearly every access hits the cached run. operator[]
//    cannot return a Status, so pin failures latch into status(), which
//    callers check after the loop (reads after a failure return 0 and
//    stay memory-safe).

#ifndef SGXB_STORAGE_COLUMN_VIEW_H_
#define SGXB_STORAGE_COLUMN_VIEW_H_

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/relation.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/version_source.h"

namespace sgxb::storage {

template <typename T>
class ColumnView {
 public:
  ColumnView() = default;
  // NOLINTNEXTLINE(runtime/explicit): Column call sites convert in place.
  ColumnView(const Column<T>& column)
      : data_(column.data()), num_values_(column.num_values()) {}
  ColumnView(const T* data, size_t num_values)
      : data_(data), num_values_(num_values) {}
  // NOLINTNEXTLINE(runtime/explicit)
  ColumnView(PagedColumn<T>* paged)
      : paged_(paged), num_values_(paged->num_values()) {}
  /// \brief Versioned overlay over `base` (resident or paged, not itself
  /// versioned): chunks with a committed version at `epoch` read the
  /// version array, all others read the base. The snapshot owner must
  /// keep `epoch` pinned (txn::SnapshotHandle) while the view is in use.
  ColumnView(const VersionSource<T>* source, uint64_t epoch,
             const ColumnView<T>& base)
      : data_(base.data_),
        paged_(base.paged_),
        vsrc_(source),
        epoch_(epoch),
        num_values_(base.num_values_) {}

  size_t num_values() const { return num_values_; }
  /// Decoded (logical) size — what a resident copy of the column occupies.
  size_t size_bytes() const { return num_values_ * sizeof(T); }
  bool paged() const { return paged_ != nullptr; }
  /// True when a version overlay is attached; flat-pointer fast paths
  /// must not bypass it (use ForEachRun / ColumnReader).
  bool versioned() const { return vsrc_ != nullptr; }
  /// Resident data pointer; null for paged views. With an overlay this is
  /// the *base* data — do not read it directly, chunks may be superseded.
  const T* raw() const { return data_; }
  PagedColumn<T>* paged_column() const { return paged_; }
  const VersionSource<T>* version_source() const { return vsrc_; }
  uint64_t epoch() const { return epoch_; }
  /// \brief The view without its overlay (the base the versions shadow).
  ColumnView<T> base() const {
    ColumnView<T> b;
    b.data_ = data_;
    b.paged_ = paged_;
    b.num_values_ = num_values_;
    return b;
  }

 private:
  const T* data_ = nullptr;
  PagedColumn<T>* paged_ = nullptr;
  const VersionSource<T>* vsrc_ = nullptr;
  uint64_t epoch_ = 0;
  size_t num_values_ = 0;
};

/// \brief Invokes `fn(run, abs_base, count)` over [begin, end): once for a
/// resident view, once per partition run for a paged view (pinning each
/// and prefetching its successor), and additionally split at version
/// chunk boundaries for a versioned view (each chunk resolves to its
/// visible version array or falls through to the base). `run[i]` is row
/// `abs_base + i`.
template <typename T, typename Fn>
Status ForEachRun(const ColumnView<T>& view, size_t begin, size_t end,
                  Fn&& fn) {
  if (begin >= end) return Status::OK();
  if (view.versioned()) {
    const VersionSource<T>* src = view.version_source();
    const ColumnView<T> base = view.base();
    const size_t cr = src->chunk_rows();
    size_t i = begin;
    while (i < end) {
      const size_t c = i / cr;
      const size_t run_end = std::min(end, (c + 1) * cr);
      const T* v = src->ChunkVersion(c, view.epoch());
      if (v != nullptr) {
        fn(v + (i - c * cr), i, run_end - i);
      } else {
        SGXB_RETURN_NOT_OK(ForEachRun(base, i, run_end, fn));
      }
      i = run_end;
    }
    return Status::OK();
  }
  if (!view.paged()) {
    fn(view.raw() + begin, begin, end - begin);
    return Status::OK();
  }
  PagedColumn<T>* col = view.paged_column();
  const size_t pr = col->partition_rows();
  size_t i = begin;
  while (i < end) {
    const size_t p = i / pr;
    const size_t run_end = std::min(end, (p + 1) * pr);
    if (run_end < end) col->PrefetchPartition(p + 1);
    auto pinned = col->PinPartition(p);
    if (!pinned.ok()) return pinned.status();
    fn(pinned.value() + (i - p * pr), i, run_end - i);
    col->UnpinPartition(p);
    i = run_end;
  }
  return Status::OK();
}

template <typename T>
class ColumnReader {
 public:
  ColumnReader() = default;
  explicit ColumnReader(const ColumnView<T>& view) { Reset(view); }
  ~ColumnReader() { Release(); }

  ColumnReader(const ColumnReader&) = delete;
  ColumnReader& operator=(const ColumnReader&) = delete;

  // Movable so per-thread predicate objects can hold readers by value.
  ColumnReader(ColumnReader&& other) noexcept { *this = std::move(other); }
  ColumnReader& operator=(ColumnReader&& other) noexcept {
    if (this != &other) {
      Release();
      run_ = other.run_;
      run_base_ = other.run_base_;
      run_len_ = other.run_len_;
      paged_ = other.paged_;
      vsrc_ = other.vsrc_;
      epoch_ = other.epoch_;
      base_ = other.base_;
      size_ = other.size_;
      pinned_part_ = other.pinned_part_;
      status_ = std::move(other.status_);
      other.pinned_part_ = kNoPin;
      other.run_ = nullptr;
      other.run_len_ = 0;
      other.paged_ = nullptr;
      other.vsrc_ = nullptr;
    }
    return *this;
  }

  void Reset(const ColumnView<T>& view) {
    Release();
    status_ = Status::OK();
    paged_ = view.paged_column();
    vsrc_ = view.version_source();
    epoch_ = view.epoch();
    base_ = view.raw();
    size_ = view.num_values();
    if (view.paged() || view.versioned()) {
      // Every access resolves through Slow until a run is cached; a
      // versioned view must not pre-install the whole base as a run, or
      // superseded chunks would be read past their versions.
      run_ = nullptr;
      run_base_ = 0;
      run_len_ = 0;
    } else {
      run_ = view.raw();
      run_base_ = 0;
      run_len_ = view.num_values();
    }
  }

  /// \brief Value of row `i`. For paged views this may pin (and prefetch
  /// the next) partition; a failed pin latches status() and yields 0.
  T operator[](size_t i) {
    // Unsigned wrap makes one compare cover both bounds.
    if (i - run_base_ < run_len_) return run_[i - run_base_];
    return Slow(i);
  }

  const Status& status() const { return status_; }

 private:
  T Slow(size_t i) {
    if (vsrc_ != nullptr) return SlowVersioned(i);
    if (paged_ == nullptr) {
      status_ = Status::InvalidArgument("row id out of column range");
      return T{};
    }
    Release();
    const size_t p = paged_->PartitionOf(i);
    if (p + 1 < paged_->num_partitions()) paged_->PrefetchPartition(p + 1);
    auto pinned = paged_->PinPartition(p);
    if (!pinned.ok()) {
      status_ = pinned.status();
      return T{};
    }
    run_ = pinned.value();
    run_base_ = paged_->PartitionBegin(p);
    run_len_ = paged_->PartitionValues(p);
    pinned_part_ = p;
    return run_[i - run_base_];
  }

  // Versioned overlay: cached runs never cross a version chunk boundary,
  // so the per-chunk visibility decision is re-made exactly when the
  // reader leaves the chunk.
  T SlowVersioned(size_t i) {
    if (i >= size_) {
      status_ = Status::InvalidArgument("row id out of column range");
      return T{};
    }
    const size_t cr = vsrc_->chunk_rows();
    const size_t c = i / cr;
    const size_t cbegin = c * cr;
    const size_t cend = std::min(size_, cbegin + cr);
    const T* v = vsrc_->ChunkVersion(c, epoch_);
    if (v != nullptr) {
      Release();
      run_ = v;
      run_base_ = cbegin;
      run_len_ = cend - cbegin;
      return run_[i - cbegin];
    }
    if (paged_ == nullptr) {
      Release();
      run_ = base_ + cbegin;
      run_base_ = cbegin;
      run_len_ = cend - cbegin;
      return run_[i - cbegin];
    }
    Release();
    const size_t p = paged_->PartitionOf(i);
    if (p + 1 < paged_->num_partitions()) paged_->PrefetchPartition(p + 1);
    auto pinned = paged_->PinPartition(p);
    if (!pinned.ok()) {
      status_ = pinned.status();
      return T{};
    }
    pinned_part_ = p;
    const size_t pbegin = paged_->PartitionBegin(p);
    const size_t pend = pbegin + paged_->PartitionValues(p);
    // The cached run is the intersection of the pinned partition and the
    // version chunk, so neither boundary is read past.
    run_base_ = std::max(pbegin, cbegin);
    run_len_ = std::min(pend, cend) - run_base_;
    run_ = pinned.value() + (run_base_ - pbegin);
    return run_[i - run_base_];
  }

  void Release() {
    if (paged_ != nullptr && pinned_part_ != kNoPin) {
      paged_->UnpinPartition(pinned_part_);
    }
    pinned_part_ = kNoPin;
    run_ = nullptr;
    run_base_ = 0;
    run_len_ = 0;
  }

  static constexpr size_t kNoPin = static_cast<size_t>(-1);

  const T* run_ = nullptr;
  size_t run_base_ = 0;
  size_t run_len_ = 0;
  PagedColumn<T>* paged_ = nullptr;
  const VersionSource<T>* vsrc_ = nullptr;
  uint64_t epoch_ = 0;
  const T* base_ = nullptr;
  size_t size_ = 0;
  Status status_;
  size_t pinned_part_ = kNoPin;
};

}  // namespace sgxb::storage

#endif  // SGXB_STORAGE_COLUMN_VIEW_H_
