// Out-of-EPC columnar buffer manager: hot partitions pinned in trusted
// memory, cold partitions spilled to untrusted memory compressed and
// encrypted (docs/storage.md).
//
// Columns registered with the manager are split into fixed-size
// partitions. At registration each partition is encoded (partition_codec)
// and encrypted (sgx::MemoryEncryptionEngine) into a permanent untrusted
// spill image — the data is read-only, so eviction never writes back: it
// just drops the decoded trusted-resident buffer. Reload copies the
// encrypted image across the enclave boundary, decrypts it into transient
// scratch, and decodes into a fresh trusted allocation charged against the
// pool budget (and, through the trusted MemoryResource, against the
// simulated enclave's EPC accounting).
//
// Concurrency: one mutex guards partition states, the clock hand, and the
// residency budget; loads (decrypt+decode) run outside the lock in a
// kLoading state so concurrent pins of *other* partitions proceed. Pins
// are counted per partition; the clock sweep skips pinned and loading
// partitions, and eviction of a pinned partition is impossible by
// construction (asserted). When nothing is evictable the pinning thread
// waits on a condvar, re-checking after every unpin (each one is a fresh
// eviction opportunity under pin churn); it fails with ResourceExhausted
// only after Config::pin_wait_timeout_ms passes with no unpin at all — a
// pool smaller than one thread's simultaneously pinned working set is a
// configuration error, not a hang.

#ifndef SGXB_STORAGE_BUFFER_MANAGER_H_
#define SGXB_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/relation.h"
#include "common/status.h"
#include "mem/memory_resource.h"
#include "sgx/mee.h"
#include "storage/partition_codec.h"

namespace sgxb::storage {

class BufferManager;
template <typename T>
class PagedColumn;

/// \brief Point-in-time view of one manager's activity. Counters are also
/// mirrored into the obs registry (storage.* names in obs/metrics.h);
/// these per-manager copies back the bench gates, which compare two
/// managers in one process.
struct BufferManagerStats {
  uint64_t partitions_registered = 0;
  uint64_t partitions_evicted = 0;   ///< resident copies dropped (spills)
  uint64_t partitions_reloaded = 0;  ///< demand loads (decrypt + decode)
  uint64_t prefetch_loads = 0;       ///< loads issued ahead of the scan
  uint64_t decrypt_bytes = 0;  ///< untrusted-tier bytes moved through the MEE
  uint64_t pin_waits = 0;            ///< condvar waits in Pin
  size_t logical_bytes = 0;          ///< decoded size of registered columns
  size_t spill_payload_bytes = 0;    ///< encoded+encrypted image size
  size_t resident_bytes = 0;         ///< currently held in the trusted pool

  /// \brief logical / spill-image size; > 1 when compression helps.
  double CompressionRatio() const {
    return spill_payload_bytes == 0
               ? 0.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(spill_payload_bytes);
  }
};

/// \brief Type-erased registered column; PagedColumn<T> adds the typed
/// accessors. Instances are owned by the BufferManager and live until it
/// is destroyed.
class PagedColumnBase {
 public:
  virtual ~PagedColumnBase() = default;

  const std::string& name() const { return name_; }
  size_t num_values() const { return num_values_; }
  size_t partition_rows() const { return partition_rows_; }
  size_t num_partitions() const { return parts_.size(); }
  size_t PartitionOf(size_t row) const { return row / partition_rows_; }
  /// First row of partition p.
  size_t PartitionBegin(size_t p) const { return p * partition_rows_; }
  size_t PartitionValues(size_t p) const;

 protected:
  friend class BufferManager;

  /// \brief One partition's spill image plus residency state. State
  /// fields are guarded by the owning manager's mutex.
  struct Partition {
    PagedColumnBase* column = nullptr;
    uint32_t index = 0;
    uint64_t mee_offset = 0;  ///< absolute MEE keystream position
    PartitionImage image;     ///< encrypted at rest in untrusted memory

    enum class State : uint8_t { kEvicted, kLoading, kResident };
    State state = State::kEvicted;
    bool ref = false;             ///< clock second-chance bit
    bool prefetch_queued = false;
    uint32_t pins = 0;
    AlignedBuffer resident;       ///< decoded values, trusted pool
  };

  BufferManager* bm_ = nullptr;
  std::string name_;
  size_t num_values_ = 0;
  size_t partition_rows_ = 0;
  size_t elem_size_ = 0;
  std::vector<Partition> parts_;
};

class BufferManager {
 public:
  struct Config {
    /// Trusted pool budget for decoded resident partitions, in bytes.
    size_t buffer_bytes = 256ull << 20;
    /// Rows per partition (the pin/evict/prefetch granule).
    size_t partition_rows = 64 * 1024;
    /// Compress spill images (frame-of-reference / dictionary); false
    /// spills raw encrypted bytes — the bench baseline.
    bool compress = true;
    /// Prefetch partition p+1 while a sequential scan works on p.
    bool prefetch = true;
    /// How long Pin may wait for capacity before ResourceExhausted.
    uint64_t pin_wait_timeout_ms = 10000;
    /// Resource for decoded resident buffers (null = SimulatedEnclave();
    /// pass mem::ForEnclave(e) to charge a live enclave's EPC budget).
    mem::MemoryResource* trusted = nullptr;
    /// Resource for spill images (null = Untrusted()).
    mem::MemoryResource* untrusted = nullptr;
    /// MEE key sealing the spill images.
    uint64_t mee_key = 0x5367785632204d45ull;
  };

  /// \brief Config with SGXBENCH_BUFFER_BYTES, SGXBENCH_PARTITION_ROWS,
  /// SGXBENCH_SPILL_COMPRESS, and SGXBENCH_SPILL_PREFETCH applied over the
  /// defaults.
  static Config ConfigFromEnv();

  explicit BufferManager(const Config& config);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// \brief Registers a column: splits it into partitions, encodes and
  /// encrypts the spill images, and returns a handle owned by this
  /// manager. Nothing is resident until first pin. T is uint8_t or
  /// uint32_t.
  template <typename T>
  Result<PagedColumn<T>*> AddColumn(std::string name, const T* values,
                                    size_t num_values) {
    static_assert(std::is_same_v<T, uint8_t> || std::is_same_v<T, uint32_t>,
                  "buffer manager stores u8 / u32 columns");
    auto col = std::make_unique<PagedColumn<T>>();
    PagedColumn<T>* handle = col.get();
    SGXB_RETURN_NOT_OK(RegisterColumn(std::move(col), std::move(name),
                                      values, num_values, sizeof(T)));
    return handle;
  }
  template <typename T>
  Result<PagedColumn<T>*> AddColumn(std::string name,
                                    const Column<T>& source) {
    return AddColumn(std::move(name), source.data(), source.num_values());
  }

  /// \brief Pins partition `p` of `column` resident and returns its
  /// decoded values; the partition cannot be evicted until the matching
  /// Unpin. Loads (and possibly evicts other partitions) on miss.
  Result<const void*> Pin(PagedColumnBase* column, size_t p);
  void Unpin(PagedColumnBase* column, size_t p);

  /// \brief Hints that partition `p` is about to be scanned: enqueues an
  /// asynchronous load if it is evicted and capacity is available without
  /// waiting. No-op when prefetch is disabled.
  void Prefetch(PagedColumnBase* column, size_t p);

  BufferManagerStats stats() const;
  const Config& config() const { return config_; }

 private:
  using Partition = PagedColumnBase::Partition;

  Status RegisterColumn(std::unique_ptr<PagedColumnBase> column,
                        std::string name, const void* values,
                        size_t num_values, size_t elem_size);
  /// Frees budget until `need` fits; may wait on unpins. Called with
  /// `lk` held; returns with it held and the bytes reserved.
  Status ReserveBudgetLocked(size_t need, std::unique_lock<std::mutex>& lk);
  /// One clock sweep; true if a partition was evicted.
  bool TryEvictOneLocked();
  void EvictLocked(Partition& p);
  /// Decrypt + decode `p`'s image into a trusted buffer (no lock held).
  Status LoadPartition(Partition& p, AlignedBuffer* out);
  void PrefetchWorker();

  const Config config_;
  mem::MemoryResource* trusted_;
  mem::MemoryResource* untrusted_;
  sgx::MemoryEncryptionEngine mee_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<PagedColumnBase>> columns_;
  std::vector<Partition*> clock_;
  size_t hand_ = 0;
  size_t resident_bytes_ = 0;
  uint64_t next_mee_offset_ = 0;
  /// Bumped on every Unpin: capacity waiters use it to tell "the pool is
  /// churning, keep retrying" from "nothing has moved, time out".
  uint64_t unpin_seq_ = 0;
  /// Threads parked in ReserveBudgetLocked; Unpin broadcasts while any
  /// are waiting even if the partition's pin count stays above zero.
  int capacity_waiters_ = 0;

  // Stats (atomics: read without mu_, some bumped from the load path).
  std::atomic<uint64_t> n_registered_{0};
  std::atomic<uint64_t> n_evicted_{0};
  std::atomic<uint64_t> n_reloaded_{0};
  std::atomic<uint64_t> n_prefetch_loads_{0};
  std::atomic<uint64_t> n_decrypt_bytes_{0};
  std::atomic<uint64_t> n_pin_waits_{0};
  std::atomic<uint64_t> logical_bytes_{0};
  std::atomic<uint64_t> spill_payload_bytes_{0};

  // Prefetch worker (started lazily on first Prefetch call).
  std::mutex pf_mu_;
  std::condition_variable pf_cv_;
  std::deque<Partition*> pf_queue_;
  std::thread pf_thread_;
  bool pf_started_ = false;
  bool pf_stop_ = false;
};

/// \brief Typed handle to a registered column.
template <typename T>
class PagedColumn : public PagedColumnBase {
 public:
  Result<const T*> PinPartition(size_t p) {
    auto r = bm_->Pin(this, p);
    if (!r.ok()) return r.status();
    return static_cast<const T*>(r.value());
  }
  void UnpinPartition(size_t p) { bm_->Unpin(this, p); }
  void PrefetchPartition(size_t p) { bm_->Prefetch(this, p); }
};

}  // namespace sgxb::storage

#endif  // SGXB_STORAGE_BUFFER_MANAGER_H_
