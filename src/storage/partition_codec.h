// Per-partition spill codec: raw, frame-of-reference bit-packed, or
// dictionary encoding — whichever produces the smallest image.
//
// The buffer manager pays MEE decrypt cost on every byte it moves back
// from the untrusted tier, so the spill image is compressed *before*
// encryption: decrypt+decode on few bytes beats decrypt on many ("Securing
// the Storage Data Path with SGX Enclaves", PAPERS.md). Encodings:
//
//  - kRaw: memcpy of the source bytes (fallback; also the uncompressed
//    baseline bench_ext_oepc compares against).
//  - kForPacked: frame-of-reference + word-aligned guard-bit packing via
//    scan::PackedColumn. Date/key partitions whose absolute values need
//    22+ bits typically span a narrow per-partition range and pack to a
//    fraction of the raw width.
//  - kDict: sorted dictionary of distinct values plus packed codes, for
//    low-cardinality columns (flags, segments, priorities).
//
// The payload is a single contiguous buffer so the MEE can encrypt it as
// one image; shape metadata (encoding, widths, frame minimum, dictionary
// size) stays in trusted bookkeeping and is never encrypted.

#ifndef SGXB_STORAGE_PARTITION_CODEC_H_
#define SGXB_STORAGE_PARTITION_CODEC_H_

#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "mem/memory_resource.h"

namespace sgxb::storage {

enum class Encoding : uint8_t {
  kRaw = 0,
  kForPacked = 1,
  kDict = 2,
};

const char* EncodingName(Encoding e);

/// \brief Encoded spill image of one column partition. `payload` holds the
/// encoded bytes (encrypted at rest by the buffer manager); everything
/// else is trusted bookkeeping needed to decode.
struct PartitionImage {
  Encoding encoding = Encoding::kRaw;
  uint32_t num_values = 0;
  uint8_t elem_size = 0;    ///< source element width in bytes (1 or 4)
  uint8_t bit_width = 0;    ///< packed field width (kForPacked / kDict codes)
  uint32_t frame_min = 0;   ///< kForPacked frame-of-reference bias
  uint32_t dict_size = 0;   ///< kDict distinct-value count
  AlignedBuffer payload;

  size_t payload_bytes() const { return payload.size(); }
  size_t decoded_bytes() const {
    return static_cast<size_t>(num_values) * elem_size;
  }
};

/// \brief Encodes `num_values` elements of `elem_size` bytes (1 or 4)
/// starting at `values`, choosing the smallest of raw / frame-of-reference
/// packed / dictionary (raw only when `allow_compress` is false). The
/// payload is allocated from `payload_resource` (null = untrusted host
/// memory).
Result<PartitionImage> EncodePartition(
    const void* values, size_t num_values, size_t elem_size,
    bool allow_compress, mem::MemoryResource* payload_resource = nullptr);

/// \brief Decodes `payload` (the *decrypted* image bytes, `image.payload_bytes()`
/// long) into `out`, which must hold `image.decoded_bytes()` bytes. The
/// payload pointer is explicit because the at-rest image stays encrypted:
/// the loader decrypts into transient scratch and decodes from there.
Status DecodePartition(const PartitionImage& image, const uint8_t* payload,
                       void* out);

}  // namespace sgxb::storage

#endif  // SGXB_STORAGE_PARTITION_CODEC_H_
