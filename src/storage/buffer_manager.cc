#include "storage/buffer_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "common/env.h"
#include "obs/metrics.h"

namespace sgxb::storage {

namespace {

// MEE keystream positions are assigned per partition, 64-byte aligned, so
// every image owns a disjoint keystream range.
constexpr uint64_t kMeeAlign = 64;

obs::Counter* CtrEvicted() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrStoragePartitionsEvicted);
  return c;
}
obs::Counter* CtrReloaded() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrStoragePartitionsReloaded);
  return c;
}
obs::Counter* CtrPrefetchLoads() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrStoragePrefetchLoads);
  return c;
}
obs::Counter* CtrDecryptBytes() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrStorageDecryptBytes);
  return c;
}
obs::Counter* CtrPinWaits() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrStoragePinWaits);
  return c;
}

}  // namespace

size_t PagedColumnBase::PartitionValues(size_t p) const {
  return std::min(partition_rows_, num_values_ - p * partition_rows_);
}

BufferManager::Config BufferManager::ConfigFromEnv() {
  Config c;
  c.buffer_bytes = EnvUint("SGXBENCH_BUFFER_BYTES", c.buffer_bytes,
                           /*lo=*/1ull << 16, /*hi=*/1ull << 40);
  c.partition_rows = EnvUint("SGXBENCH_PARTITION_ROWS", c.partition_rows,
                             /*lo=*/1024, /*hi=*/1ull << 24);
  c.compress = EnvBool("SGXBENCH_SPILL_COMPRESS", c.compress);
  c.prefetch = EnvBool("SGXBENCH_SPILL_PREFETCH", c.prefetch);
  return c;
}

BufferManager::BufferManager(const Config& config)
    : config_(config),
      trusted_(config.trusted != nullptr ? config.trusted
                                         : mem::SimulatedEnclave()),
      untrusted_(config.untrusted != nullptr ? config.untrusted
                                             : mem::Untrusted()),
      mee_(config.mee_key) {}

BufferManager::~BufferManager() {
  {
    std::lock_guard<std::mutex> lk(pf_mu_);
    pf_stop_ = true;
  }
  pf_cv_.notify_all();
  if (pf_thread_.joinable()) pf_thread_.join();
#ifndef NDEBUG
  std::lock_guard<std::mutex> lk(mu_);
  for (Partition* p : clock_) {
    assert(p->pins == 0 && "column partition still pinned at destruction");
  }
#endif
}

Status BufferManager::RegisterColumn(std::unique_ptr<PagedColumnBase> column,
                                     std::string name, const void* values,
                                     size_t num_values, size_t elem_size) {
  if (num_values == 0) {
    return Status::InvalidArgument("cannot register an empty column");
  }
  PagedColumnBase* col = column.get();
  col->bm_ = this;
  col->name_ = std::move(name);
  col->num_values_ = num_values;
  col->partition_rows_ = config_.partition_rows;
  col->elem_size_ = elem_size;

  const size_t pr = config_.partition_rows;
  const size_t nparts = (num_values + pr - 1) / pr;
  col->parts_.resize(nparts);
  const auto* base = static_cast<const uint8_t*>(values);
  uint64_t logical = 0;
  uint64_t payload = 0;
  for (size_t p = 0; p < nparts; ++p) {
    const size_t begin = p * pr;
    const size_t n = std::min(pr, num_values - begin);
    auto image = EncodePartition(base + begin * elem_size, n, elem_size,
                                 config_.compress, untrusted_);
    if (!image.ok()) return image.status();
    Partition& part = col->parts_[p];
    part.column = col;
    part.index = static_cast<uint32_t>(p);
    part.image = std::move(image).value();
    logical += part.image.decoded_bytes();
    payload += part.image.payload_bytes();
  }

  // Seal the images: assign disjoint keystream ranges and encrypt. From
  // here on the payloads are ciphertext at rest in untrusted memory.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t p = 0; p < nparts; ++p) {
      Partition& part = col->parts_[p];
      part.mee_offset = next_mee_offset_;
      next_mee_offset_ +=
          (part.image.payload_bytes() + kMeeAlign - 1) & ~(kMeeAlign - 1);
      mee_.Encrypt(part.image.payload.data(), part.image.payload_bytes(),
                   part.mee_offset);
      clock_.push_back(&part);
    }
    columns_.push_back(std::move(column));
  }
  n_registered_.fetch_add(nparts, std::memory_order_relaxed);
  logical_bytes_.fetch_add(logical, std::memory_order_relaxed);
  spill_payload_bytes_.fetch_add(payload, std::memory_order_relaxed);
  return Status::OK();
}

Result<const void*> BufferManager::Pin(PagedColumnBase* column, size_t p) {
  if (p >= column->num_partitions()) {
    return Status::InvalidArgument("partition index out of range");
  }
  Partition& part = column->parts_[p];
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (part.state == Partition::State::kResident) {
      ++part.pins;
      part.ref = true;
      return static_cast<const void*>(part.resident.data());
    }
    if (part.state == Partition::State::kLoading) {
      n_pin_waits_.fetch_add(1, std::memory_order_relaxed);
      CtrPinWaits()->Increment();
      cv_.wait(lk);
      continue;
    }
    // kEvicted: this thread performs the load.
    const size_t need = part.image.decoded_bytes();
    SGXB_RETURN_NOT_OK(ReserveBudgetLocked(need, lk));
    if (part.state != Partition::State::kEvicted) {
      // Loaded by someone else while we waited for capacity: hand the
      // reservation back and re-examine.
      resident_bytes_ -= need;
      cv_.notify_all();
      continue;
    }
    part.state = Partition::State::kLoading;
    lk.unlock();
    AlignedBuffer buf;
    Status s = LoadPartition(part, &buf);
    lk.lock();
    if (!s.ok()) {
      part.state = Partition::State::kEvicted;
      resident_bytes_ -= need;
      cv_.notify_all();
      return s;
    }
    part.resident = std::move(buf);
    part.state = Partition::State::kResident;
    ++part.pins;
    part.ref = true;
    n_reloaded_.fetch_add(1, std::memory_order_relaxed);
    CtrReloaded()->Increment();
    cv_.notify_all();
    return static_cast<const void*>(part.resident.data());
  }
}

void BufferManager::Unpin(PagedColumnBase* column, size_t p) {
  Partition& part = column->parts_[p];
  std::lock_guard<std::mutex> lk(mu_);
  assert(part.pins > 0 && "unbalanced Unpin");
  ++unpin_seq_;
  // Wake capacity waiters on *every* unpin, not just the one that drops a
  // partition's pin count to zero: under pin churn (txn COW reads, mixed
  // HTAP load) a partition's count rarely rests at zero, yet each unpin
  // is a fresh eviction opportunity the waiter must race for.
  if (--part.pins == 0 || capacity_waiters_ > 0) cv_.notify_all();
}

void BufferManager::Prefetch(PagedColumnBase* column, size_t p) {
  if (!config_.prefetch || p >= column->num_partitions()) return;
  Partition& part = column->parts_[p];
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (part.state != Partition::State::kEvicted || part.prefetch_queued) {
      return;
    }
    part.prefetch_queued = true;
  }
  {
    std::lock_guard<std::mutex> lk(pf_mu_);
    if (pf_stop_) return;
    if (!pf_started_) {
      pf_started_ = true;
      pf_thread_ = std::thread([this] { PrefetchWorker(); });
    }
    pf_queue_.push_back(&part);
  }
  pf_cv_.notify_one();
}

Status BufferManager::ReserveBudgetLocked(size_t need,
                                          std::unique_lock<std::mutex>& lk) {
  if (need > config_.buffer_bytes) {
    return Status::InvalidArgument(
        "partition of " + std::to_string(need) +
        " bytes exceeds the buffer pool (" +
        std::to_string(config_.buffer_bytes) +
        " bytes); raise SGXBENCH_BUFFER_BYTES or lower "
        "SGXBENCH_PARTITION_ROWS");
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.pin_wait_timeout_ms);
  uint64_t progress = unpin_seq_;
  while (resident_bytes_ + need > config_.buffer_bytes) {
    if (TryEvictOneLocked()) continue;
    // Everything resident is pinned or loading: wait for an unpin.
    n_pin_waits_.fetch_add(1, std::memory_order_relaxed);
    CtrPinWaits()->Increment();
    ++capacity_waiters_;
    const bool timed_out =
        cv_.wait_until(lk, deadline) == std::cv_status::timeout;
    --capacity_waiters_;
    if (unpin_seq_ != progress) {
      // Pins are churning: every unpin is a fresh eviction chance, so the
      // deadline measures time since the pool last *moved*, not time in
      // the loop. A one-shot deadline here reported spurious
      // ResourceExhausted whenever churning pinners kept beating the
      // waiter to the mutex for the whole window — and a timeout that
      // raced a concurrent unpin gave up without even re-checking.
      progress = unpin_seq_;
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(config_.pin_wait_timeout_ms);
      continue;
    }
    if (timed_out) {
      return Status::ResourceExhausted(
          "buffer pool (" + std::to_string(config_.buffer_bytes) +
          " bytes) cannot fit another partition: all resident partitions "
          "stayed pinned for " +
          std::to_string(config_.pin_wait_timeout_ms) + " ms");
    }
  }
  resident_bytes_ += need;
  return Status::OK();
}

bool BufferManager::TryEvictOneLocked() {
  const size_t n = clock_.size();
  if (n == 0) return false;
  // Two sweeps: the first pass may only strip reference bits.
  for (size_t step = 0; step < 2 * n; ++step) {
    Partition& p = *clock_[hand_];
    hand_ = (hand_ + 1) % n;
    if (p.state != Partition::State::kResident || p.pins > 0) continue;
    if (p.ref) {
      p.ref = false;
      continue;
    }
    EvictLocked(p);
    return true;
  }
  return false;
}

void BufferManager::EvictLocked(Partition& p) {
  assert(p.state == Partition::State::kResident && p.pins == 0 &&
         "eviction must never reclaim a pinned partition");
  p.resident.Reset();
  p.state = Partition::State::kEvicted;
  resident_bytes_ -= p.image.decoded_bytes();
  n_evicted_.fetch_add(1, std::memory_order_relaxed);
  CtrEvicted()->Increment();
}

Status BufferManager::LoadPartition(Partition& p, AlignedBuffer* out) {
  auto buf = trusted_->Allocate(p.image.decoded_bytes());
  if (!buf.ok()) return buf.status();
  // Enclave-side load: copy the ciphertext across the boundary, decrypt
  // in transient scratch, decode into the trusted resident buffer. The
  // at-rest image is never mutated, so concurrent future reloads decrypt
  // the same bytes.
  const size_t bytes = p.image.payload_bytes();
  thread_local std::vector<uint8_t> scratch;
  scratch.resize(bytes);
  std::memcpy(scratch.data(), p.image.payload.data(), bytes);
  mee_.Decrypt(scratch.data(), bytes, p.mee_offset);
  SGXB_RETURN_NOT_OK(
      DecodePartition(p.image, scratch.data(), buf.value().data()));
  n_decrypt_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  CtrDecryptBytes()->Add(bytes);
  *out = std::move(buf).value();
  return Status::OK();
}

void BufferManager::PrefetchWorker() {
  for (;;) {
    Partition* p = nullptr;
    {
      std::unique_lock<std::mutex> lk(pf_mu_);
      pf_cv_.wait(lk, [&] { return pf_stop_ || !pf_queue_.empty(); });
      if (pf_stop_) return;
      p = pf_queue_.front();
      pf_queue_.pop_front();
    }
    std::unique_lock<std::mutex> lk(mu_);
    p->prefetch_queued = false;
    if (p->state != Partition::State::kEvicted) continue;
    const size_t need = p->image.decoded_bytes();
    if (need > config_.buffer_bytes) continue;
    // Opportunistic: a prefetch may evict cold partitions but never waits
    // on pins — demand pins own that contention.
    bool fits = true;
    while (resident_bytes_ + need > config_.buffer_bytes) {
      if (!TryEvictOneLocked()) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    resident_bytes_ += need;
    p->state = Partition::State::kLoading;
    lk.unlock();
    AlignedBuffer buf;
    Status s = LoadPartition(*p, &buf);
    lk.lock();
    if (!s.ok()) {
      p->state = Partition::State::kEvicted;
      resident_bytes_ -= need;
      cv_.notify_all();
      continue;
    }
    p->resident = std::move(buf);
    p->state = Partition::State::kResident;
    p->ref = true;
    n_prefetch_loads_.fetch_add(1, std::memory_order_relaxed);
    CtrPrefetchLoads()->Increment();
    cv_.notify_all();
  }
}

BufferManagerStats BufferManager::stats() const {
  BufferManagerStats s;
  s.partitions_registered = n_registered_.load(std::memory_order_relaxed);
  s.partitions_evicted = n_evicted_.load(std::memory_order_relaxed);
  s.partitions_reloaded = n_reloaded_.load(std::memory_order_relaxed);
  s.prefetch_loads = n_prefetch_loads_.load(std::memory_order_relaxed);
  s.decrypt_bytes = n_decrypt_bytes_.load(std::memory_order_relaxed);
  s.pin_waits = n_pin_waits_.load(std::memory_order_relaxed);
  s.logical_bytes = logical_bytes_.load(std::memory_order_relaxed);
  s.spill_payload_bytes =
      spill_payload_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace sgxb::storage
