// ParallelRun / ParallelFor, implemented on the persistent executor.
//
// ParallelRun keeps its historical signature (all operators and tests
// compile unchanged) but no longer spawns threads: a call is one gang
// dispatched to the pool, and a worker that throws now surfaces as a
// Status instead of terminating the process. ParallelFor is the
// morsel-driven alternative for operators whose work does not need the
// one-range-per-thread structure: it splits [0, total) into grain-sized
// morsels, seeds one work-stealing deque per lane, and lets idle lanes
// steal, so a skewed morsel cost no longer idles the other lanes.

#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "exec/executor.h"
#include "exec/ws_deque.h"

namespace sgxb {

Status ParallelRun(int num_threads, const std::function<void(int)>& fn,
                   const ThreadPlacement& placement) {
  return exec::Executor::Default().RunGang(
      num_threads,
      [&fn](int tid) {
        fn(tid);
        return Status::OK();
      },
      placement);
}

Status ParallelFor(size_t total, size_t grain,
                   const std::function<void(Range, int)>& body,
                   const ParallelForOptions& options) {
  if (total == 0) return Status::OK();
  const size_t g = std::max<size_t>(1, grain);
  const size_t num_morsels = (total + g - 1) / g;
  // Elastic lane count: a caller that does not fix its thread count takes
  // a share-aware grant, so under concurrent serving one ParallelFor does
  // not lease the whole pool away from other in-flight queries. Explicit
  // num_threads stays exact (rigid gangs size their barriers to it).
  int lanes = options.num_threads > 0
                  ? options.num_threads
                  : exec::Executor::Default().GrantedGangSize(
                        exec::Executor::DefaultParallelism());
  lanes = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(1, lanes)), num_morsels));

  // Seed each lane's deque with a contiguous block of morsels, pushed in
  // descending order so the owner (popping the bottom, LIFO) walks its
  // block front to back while thieves (stealing the top, FIFO) take from
  // the far end — maximum distance from the owner's cursor.
  std::vector<std::unique_ptr<exec::WsDeque>> deques;
  deques.reserve(lanes);
  for (int lane = 0; lane < lanes; ++lane) {
    Range share = SplitRange(num_morsels, lanes, lane);
    deques.push_back(std::make_unique<exec::WsDeque>(share.size() + 1));
    for (size_t m = share.end; m > share.begin; --m) {
      deques[lane]->Push(m - 1);
    }
  }

  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> stolen{0};

  auto run_lane = [&](int lane) {
    uint64_t local_done = 0;
    uint64_t local_stolen = 0;
    uint64_t m;
    for (;;) {
      bool got = deques[lane]->PopBottom(&m);
      if (!got) {
        // Own deque drained: sweep the other lanes. Morsels are only
        // seeded up front, so a full sweep that sees nothing but kEmpty
        // proves every morsel is done or currently running — stop. A
        // kLost (lost CAS race) means work may remain, so sweep again.
        bool saw_lost = false;
        for (int k = 1; k < lanes && !got; ++k) {
          switch (deques[(lane + k) % lanes]->TrySteal(&m)) {
            case exec::WsDeque::Steal::kGot:
              got = true;
              ++local_stolen;
              break;
            case exec::WsDeque::Steal::kLost:
              saw_lost = true;
              break;
            case exec::WsDeque::Steal::kEmpty:
              break;
          }
        }
        if (!got) {
          if (saw_lost) continue;
          break;
        }
      }
      body(Range{m * g, std::min(total, (m + 1) * g)}, lane);
      ++local_done;
    }
    executed.fetch_add(local_done, std::memory_order_relaxed);
    stolen.fetch_add(local_stolen, std::memory_order_relaxed);
  };

  Status st = exec::Executor::Default().RunGang(
      lanes,
      [&](int lane) {
        if (options.worker_scope) {
          options.worker_scope(lane, [&run_lane, lane] { run_lane(lane); });
        } else {
          run_lane(lane);
        }
        return Status::OK();
      },
      options.placement);
  exec::Executor::Default().NoteMorsels(
      executed.load(std::memory_order_relaxed),
      stolen.load(std::memory_order_relaxed));
  return st;
}

}  // namespace sgxb
