#include "exec/executor.h"

#include <pthread.h>

#include <exception>
#include <string>

#include "common/cpu_info.h"
#include "common/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sgx/transition.h"

namespace sgxb::exec {

namespace {

// Thread-local identity of the current task: set for the duration of a gang
// task (pool or fallback thread), cleared afterwards.
thread_local bool t_on_pool_worker = false;
thread_local int t_numa_node = 0;

std::atomic<int> g_dispatch_mode{-1};  // -1 = uninitialized

DispatchMode InitialDispatchMode() {
  auto v = EnvString("SGXBENCH_EXECUTOR");
  if (v.has_value()) {
    if (*v == "spawn") return DispatchMode::kSpawn;
    if (*v != "pool") {
      sgxb::internal::WarnOnce("SGXBENCH_EXECUTOR",
                             "expected \"pool\" or \"spawn\"; using pool");
    }
  }
  return DispatchMode::kPool;
}

// Scheduling activity mirrored into the obs registry so per-query reports
// can diff it over a query window. ExecutorStats keeps the per-instance
// view; these are process-global sums.
obs::Counter& CtrGangs() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecGangs);
  return *c;
}
obs::Counter& CtrTasks() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecTasks);
  return *c;
}
obs::Counter& CtrMorsels() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecMorsels);
  return *c;
}
obs::Counter& CtrMorselSteals() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecMorselSteals);
  return *c;
}

// Pins the calling thread. Unlike the old ParallelRun, which called
// pthread_setaffinity_np on an already-running thread (racing the body's
// first instructions onto an arbitrary core), this always runs *before* the
// worker reports ready / the fallback thread enters its body.
void PinSelfToCore(int core) {
  if (core >= CpuInfo::Host().logical_cores) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best effort: pinning failures (e.g. restricted cpusets) are not fatal.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

Status InvokeBody(const std::function<Status(int)>& body, int tid) {
  try {
    return body(tid);
  } catch (const std::exception& e) {
    return Status::Internal("worker " + std::to_string(tid) +
                            " threw: " + e.what());
  } catch (...) {
    return Status::Internal("worker " + std::to_string(tid) +
                            " threw a non-standard exception");
  }
}

// After a task, the worker must be back outside the (simulated) enclave: a
// body that called EnclaveEnter without a matching exit would leave the
// thread-local enclave depth dirty, silently charging transition costs to
// every later task scheduled on this worker. Unwind and report.
Status CheckEnclaveHygiene(int tid, Status st) {
  int leaked = 0;
  while (sgx::InEnclaveMode()) {
    sgx::EnclaveExit();
    ++leaked;
  }
  if (leaked > 0 && st.ok()) {
    st = Status::Internal("worker " + std::to_string(tid) +
                          " left enclave mode dirty (depth " +
                          std::to_string(leaked) + ")");
  }
  return st;
}

}  // namespace

DispatchMode dispatch_mode() {
  int m = g_dispatch_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    // First reader resolves the env knob. CAS instead of a plain store:
    // a blind store could overwrite a concurrent SetDispatchMode() with
    // the stale env-derived value (a lost update two overlapping queries
    // would actually hit when one flips the mode mid-stream).
    int expected = -1;
    const int initial = static_cast<int>(InitialDispatchMode());
    if (g_dispatch_mode.compare_exchange_strong(expected, initial,
                                                std::memory_order_relaxed)) {
      m = initial;
    } else {
      m = expected;
    }
  }
  return static_cast<DispatchMode>(m);
}

void SetDispatchMode(DispatchMode mode) {
  g_dispatch_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

struct Executor::GangState {
  const std::function<Status(int)>* body = nullptr;
  const ThreadPlacement* placement = nullptr;
  std::vector<Status> results;
  // Attribution domain of the dispatching thread; re-published inside
  // every task body so the query's parallel work lands in its own
  // QueryReport (obs/metrics.h).
  int domain = -1;
  std::vector<int> leased;  // worker index running each tid
  std::atomic<int> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

Executor& Executor::Default() {
  static Executor executor;
  return executor;
}

Executor::Executor() = default;

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    stop_.store(true, std::memory_order_release);
    slots_cv_.notify_all();
    for (auto& w : workers_) {
      std::lock_guard<std::mutex> wl(w->mu);
      w->cv.notify_all();
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

int Executor::DefaultParallelism() {
  return std::max(1, CpuInfo::Host().logical_cores);
}

bool Executor::OnWorkerThread() { return t_on_pool_worker; }

void Executor::NoteMorsels(uint64_t executed, uint64_t stolen) {
  morsels_.fetch_add(executed, std::memory_order_relaxed);
  morsel_steals_.fetch_add(stolen, std::memory_order_relaxed);
  CtrMorsels().Add(executed);
  CtrMorselSteals().Add(stolen);
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    s.workers = static_cast<int>(workers_.size());
    s.active_gangs = active_gangs_;
    s.busy_workers = static_cast<int>(workers_.size()) - free_count_;
  }
  s.pool_threads_spawned =
      pool_threads_spawned_.load(std::memory_order_relaxed);
  s.fallback_threads_spawned =
      fallback_threads_spawned_.load(std::memory_order_relaxed);
  s.gangs = gangs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.morsels = morsels_.load(std::memory_order_relaxed);
  s.morsel_steals = morsel_steals_.load(std::memory_order_relaxed);
  s.gang_waits = gang_waits_.load(std::memory_order_relaxed);
  return s;
}

void Executor::EnsureWorkersLocked(int n) {
  while (static_cast<int>(workers_.size()) < n) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<int>(workers_.size());
    Worker* w = worker.get();
    workers_.push_back(std::move(worker));
    busy_.push_back(0);
    ++free_count_;
    w->thread = std::thread([this, w] { WorkerLoop(w); });
    pool_threads_spawned_.fetch_add(1, std::memory_order_relaxed);
    // Gate dispatch on the worker having pinned itself: "pinned at birth"
    // means no task ever observes the thread on the wrong core.
    std::unique_lock<std::mutex> wl(w->mu);
    w->cv.wait(wl, [w] { return w->ready; });
  }
}

void Executor::EnsurePoolSize(int n) {
  std::lock_guard<std::mutex> lock(dispatch_mu_);
  EnsureWorkersLocked(std::max(0, n));
  slots_cv_.notify_all();
}

void Executor::SetMaxWorkersPerGang(int cap) {
  max_workers_per_gang_.store(std::max(0, cap), std::memory_order_relaxed);
}

int Executor::max_workers_per_gang() const {
  return max_workers_per_gang_.load(std::memory_order_relaxed);
}

int Executor::GrantedGangSize(int want) {
  want = std::max(1, want);
  int granted = want;
  const int cap = max_workers_per_gang_.load(std::memory_order_relaxed);
  if (cap > 0) granted = std::min(granted, cap);
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    const int contenders =
        active_gangs_ + static_cast<int>(lease_tail_ - lease_head_);
    if (contenders > 0) {
      // Others are running or queued: take a fair slice of the pool's
      // eventual capacity (the pool grows to the host's core count under
      // the serving layer, see EnsurePoolSize).
      const int capacity =
          std::max(static_cast<int>(workers_.size()), DefaultParallelism());
      granted = std::min(granted,
                         std::max(1, capacity / (contenders + 1)));
    }
  }
  return granted;
}

void Executor::WorkerLoop(Worker* worker) {
  PinSelfToCore(worker->index);
  t_on_pool_worker = true;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->ready = true;
    worker->cv.notify_all();
  }
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               !worker->tasks.empty();
      });
      if (worker->tasks.empty()) return;  // stopped and drained
      task = worker->tasks.front();
      worker->tasks.pop_front();
    }
    RunTask(task);
  }
}

void Executor::RunTask(const Task& task) {
  GangState* gang = task.gang;
  const ThreadPlacement& placement = *gang->placement;
  // Re-publish the dispatching thread's attribution domain for the whole
  // task, counter bumps included, so a query's parallel work lands in its
  // own QueryReport no matter which worker ran it.
  obs::ScopedMetricDomain domain_scope(gang->domain);
  t_numa_node = placement.node_of_thread ? placement.node_of_thread(task.tid)
                                         : 0;
  Status st;
  {
    obs::ObsSpan span("task", "exec");
    st = InvokeBody(*gang->body, task.tid);
  }
  st = CheckEnclaveHygiene(task.tid, std::move(st));
  t_numa_node = 0;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  CtrTasks().Increment();
  gang->results[task.tid] = std::move(st);
  if (gang->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(gang->mu);
    gang->done = true;
    gang->cv.notify_all();
  }
}

Status Executor::RunGang(int num_threads,
                         const std::function<Status(int)>& body,
                         const ThreadPlacement& placement) {
  if (num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (num_threads == 1) {
    // Inline, as ParallelRun always did for one thread; the thread-local
    // node is still published so CurrentNumaNode() works single-threaded.
    int saved_node = t_numa_node;
    t_numa_node = placement.node_of_thread ? placement.node_of_thread(0) : 0;
    Status st = InvokeBody(body, 0);
    t_numa_node = saved_node;
    return st;
  }
  if (OnWorkerThread() || dispatch_mode() == DispatchMode::kSpawn) {
    return SpawnGang(num_threads, body, placement);
  }

  GangState gang;
  gang.body = &body;
  gang.placement = &placement;
  gang.domain = obs::CurrentMetricDomain();
  gang.results.assign(num_threads, Status::OK());
  gang.remaining.store(num_threads, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(dispatch_mu_);
    EnsureWorkersLocked(num_threads);
    // Lease num_threads workers, FIFO by ticket: a wide gang cannot be
    // starved by a stream of narrow ones, and all members of a gang hold
    // their workers concurrently (intra-gang barriers stay deadlock-free
    // even with overlapping gangs — the bug this replaced: gangs anchored
    // at workers 0..n-1 let the first caller claim every worker).
    const uint64_t ticket = lease_tail_++;
    if (!(lease_head_ == ticket && free_count_ >= num_threads)) {
      gang_waits_.fetch_add(1, std::memory_order_relaxed);
    }
    slots_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             (lease_head_ == ticket && free_count_ >= num_threads);
    });
    if (stop_.load(std::memory_order_acquire)) {
      ++lease_head_;  // retire the ticket so later waiters can observe stop
      slots_cv_.notify_all();
      return Status::Internal("executor stopped");
    }
    for (int i = 0;
         i < static_cast<int>(workers_.size()) &&
         static_cast<int>(gang.leased.size()) < num_threads;
         ++i) {
      if (!busy_[i]) {
        busy_[i] = 1;
        gang.leased.push_back(i);
      }
    }
    free_count_ -= num_threads;
    ++lease_head_;
    ++active_gangs_;
    // Wake the next ticket holder: it may already be satisfiable if the
    // pool is larger than both gangs combined.
    slots_cv_.notify_all();
    // Enqueue the whole gang in tid order under the dispatch lock; leased
    // workers are idle, so each takes exactly its one task.
    for (int tid = 0; tid < num_threads; ++tid) {
      Worker* w = workers_[gang.leased[tid]].get();
      std::lock_guard<std::mutex> wl(w->mu);
      w->tasks.push_back(Task{&gang, tid});
      w->cv.notify_one();
    }
  }
  gangs_.fetch_add(1, std::memory_order_relaxed);
  {
    obs::ScopedMetricDomain domain_scope(gang.domain);
    CtrGangs().Increment();
  }
  {
    std::unique_lock<std::mutex> lock(gang.mu);
    gang.cv.wait(lock, [&] { return gang.done; });
  }
  {
    // Release the lease. Slot release and waiter wake-up happen under the
    // single dispatch lock: a waiting gang cannot observe the free count
    // before the release yet miss the notify after it (the lost-wakeup
    // shape this handoff is designed against).
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    for (int idx : gang.leased) busy_[idx] = 0;
    free_count_ += num_threads;
    --active_gangs_;
    slots_cv_.notify_all();
  }
  for (Status& st : gang.results) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status Executor::SpawnGang(int num_threads,
                           const std::function<Status(int)>& body,
                           const ThreadPlacement& placement) {
  std::vector<Status> results(num_threads);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  // Fresh threads start with no attribution domain; carry the spawner's
  // over so nested/spawn-mode gangs attribute like pool gangs do.
  const int domain = obs::CurrentMetricDomain();
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&, tid, domain] {
      obs::ScopedMetricDomain domain_scope(domain);
      // Pin from inside the thread, before the body runs (the old
      // ParallelRun pinned from the spawner, racing an already-running
      // body).
      if (placement.pin_threads) PinSelfToCore(tid);
      t_numa_node =
          placement.node_of_thread ? placement.node_of_thread(tid) : 0;
      Status st;
      {
        obs::ObsSpan span("task", "exec");
        st = InvokeBody(body, tid);
      }
      results[tid] = CheckEnclaveHygiene(tid, std::move(st));
      t_numa_node = 0;
      CtrTasks().Increment();
    });
  }
  fallback_threads_spawned_.fetch_add(num_threads,
                                      std::memory_order_relaxed);
  CtrGangs().Increment();
  for (auto& t : threads) t.join();
  for (Status& st : results) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace sgxb::exec

namespace sgxb {

// Declared in common/parallel.h; defined here so the task-identity
// thread-locals stay private to this translation unit.
int CurrentNumaNode() { return exec::t_numa_node; }

}  // namespace sgxb
