#include "exec/executor.h"

#include <pthread.h>

#include <exception>
#include <string>

#include "common/cpu_info.h"
#include "common/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sgx/transition.h"

namespace sgxb::exec {

namespace {

// Thread-local identity of the current task: set for the duration of a gang
// task (pool or fallback thread), cleared afterwards.
thread_local bool t_on_pool_worker = false;
thread_local int t_numa_node = 0;

std::atomic<int> g_dispatch_mode{-1};  // -1 = uninitialized

DispatchMode InitialDispatchMode() {
  auto v = EnvString("SGXBENCH_EXECUTOR");
  if (v.has_value()) {
    if (*v == "spawn") return DispatchMode::kSpawn;
    if (*v != "pool") {
      sgxb::internal::WarnOnce("SGXBENCH_EXECUTOR",
                             "expected \"pool\" or \"spawn\"; using pool");
    }
  }
  return DispatchMode::kPool;
}

// Scheduling activity mirrored into the obs registry so per-query reports
// can diff it over a query window. ExecutorStats keeps the per-instance
// view; these are process-global sums.
obs::Counter& CtrGangs() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecGangs);
  return *c;
}
obs::Counter& CtrTasks() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecTasks);
  return *c;
}
obs::Counter& CtrMorsels() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecMorsels);
  return *c;
}
obs::Counter& CtrMorselSteals() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrExecMorselSteals);
  return *c;
}

// Pins the calling thread. Unlike the old ParallelRun, which called
// pthread_setaffinity_np on an already-running thread (racing the body's
// first instructions onto an arbitrary core), this always runs *before* the
// worker reports ready / the fallback thread enters its body.
void PinSelfToCore(int core) {
  if (core >= CpuInfo::Host().logical_cores) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best effort: pinning failures (e.g. restricted cpusets) are not fatal.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

Status InvokeBody(const std::function<Status(int)>& body, int tid) {
  try {
    return body(tid);
  } catch (const std::exception& e) {
    return Status::Internal("worker " + std::to_string(tid) +
                            " threw: " + e.what());
  } catch (...) {
    return Status::Internal("worker " + std::to_string(tid) +
                            " threw a non-standard exception");
  }
}

// After a task, the worker must be back outside the (simulated) enclave: a
// body that called EnclaveEnter without a matching exit would leave the
// thread-local enclave depth dirty, silently charging transition costs to
// every later task scheduled on this worker. Unwind and report.
Status CheckEnclaveHygiene(int tid, Status st) {
  int leaked = 0;
  while (sgx::InEnclaveMode()) {
    sgx::EnclaveExit();
    ++leaked;
  }
  if (leaked > 0 && st.ok()) {
    st = Status::Internal("worker " + std::to_string(tid) +
                          " left enclave mode dirty (depth " +
                          std::to_string(leaked) + ")");
  }
  return st;
}

}  // namespace

DispatchMode dispatch_mode() {
  int m = g_dispatch_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = static_cast<int>(InitialDispatchMode());
    g_dispatch_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<DispatchMode>(m);
}

void SetDispatchMode(DispatchMode mode) {
  g_dispatch_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

struct Executor::GangState {
  const std::function<Status(int)>* body = nullptr;
  const ThreadPlacement* placement = nullptr;
  std::vector<Status> results;
  std::atomic<int> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

Executor& Executor::Default() {
  static Executor executor;
  return executor;
}

Executor::Executor() = default;

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
      std::lock_guard<std::mutex> wl(w->mu);
      w->cv.notify_all();
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

int Executor::DefaultParallelism() {
  return std::max(1, CpuInfo::Host().logical_cores);
}

bool Executor::OnWorkerThread() { return t_on_pool_worker; }

void Executor::NoteMorsels(uint64_t executed, uint64_t stolen) {
  morsels_.fetch_add(executed, std::memory_order_relaxed);
  morsel_steals_.fetch_add(stolen, std::memory_order_relaxed);
  CtrMorsels().Add(executed);
  CtrMorselSteals().Add(stolen);
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    s.workers = static_cast<int>(workers_.size());
  }
  s.pool_threads_spawned =
      pool_threads_spawned_.load(std::memory_order_relaxed);
  s.fallback_threads_spawned =
      fallback_threads_spawned_.load(std::memory_order_relaxed);
  s.gangs = gangs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.morsels = morsels_.load(std::memory_order_relaxed);
  s.morsel_steals = morsel_steals_.load(std::memory_order_relaxed);
  return s;
}

void Executor::EnsureWorkersLocked(int n) {
  while (static_cast<int>(workers_.size()) < n) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<int>(workers_.size());
    Worker* w = worker.get();
    workers_.push_back(std::move(worker));
    w->thread = std::thread([this, w] { WorkerLoop(w); });
    pool_threads_spawned_.fetch_add(1, std::memory_order_relaxed);
    // Gate dispatch on the worker having pinned itself: "pinned at birth"
    // means no task ever observes the thread on the wrong core.
    std::unique_lock<std::mutex> wl(w->mu);
    w->cv.wait(wl, [w] { return w->ready; });
  }
}

void Executor::WorkerLoop(Worker* worker) {
  PinSelfToCore(worker->index);
  t_on_pool_worker = true;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->ready = true;
    worker->cv.notify_all();
  }
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               !worker->tasks.empty();
      });
      if (worker->tasks.empty()) return;  // stopped and drained
      task = worker->tasks.front();
      worker->tasks.pop_front();
    }
    RunTask(task);
  }
}

void Executor::RunTask(const Task& task) {
  GangState* gang = task.gang;
  const ThreadPlacement& placement = *gang->placement;
  t_numa_node = placement.node_of_thread ? placement.node_of_thread(task.tid)
                                         : 0;
  Status st;
  {
    obs::ObsSpan span("task", "exec");
    st = InvokeBody(*gang->body, task.tid);
  }
  st = CheckEnclaveHygiene(task.tid, std::move(st));
  t_numa_node = 0;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  CtrTasks().Increment();
  gang->results[task.tid] = std::move(st);
  if (gang->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(gang->mu);
    gang->done = true;
    gang->cv.notify_all();
  }
}

Status Executor::RunGang(int num_threads,
                         const std::function<Status(int)>& body,
                         const ThreadPlacement& placement) {
  if (num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (num_threads == 1) {
    // Inline, as ParallelRun always did for one thread; the thread-local
    // node is still published so CurrentNumaNode() works single-threaded.
    int saved_node = t_numa_node;
    t_numa_node = placement.node_of_thread ? placement.node_of_thread(0) : 0;
    Status st = InvokeBody(body, 0);
    t_numa_node = saved_node;
    return st;
  }
  if (OnWorkerThread() || dispatch_mode() == DispatchMode::kSpawn) {
    return SpawnGang(num_threads, body, placement);
  }

  GangState gang;
  gang.body = &body;
  gang.placement = &placement;
  gang.results.assign(num_threads, Status::OK());
  gang.remaining.store(num_threads, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    EnsureWorkersLocked(num_threads);
    // Enqueue the whole gang in tid order under the dispatch lock; paired
    // with FIFO draining this gives all workers a consistent gang order.
    for (int tid = 0; tid < num_threads; ++tid) {
      Worker* w = workers_[tid].get();
      std::lock_guard<std::mutex> wl(w->mu);
      w->tasks.push_back(Task{&gang, tid});
      w->cv.notify_one();
    }
  }
  gangs_.fetch_add(1, std::memory_order_relaxed);
  CtrGangs().Increment();
  {
    std::unique_lock<std::mutex> lock(gang.mu);
    gang.cv.wait(lock, [&] { return gang.done; });
  }
  for (Status& st : gang.results) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status Executor::SpawnGang(int num_threads,
                           const std::function<Status(int)>& body,
                           const ThreadPlacement& placement) {
  std::vector<Status> results(num_threads);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&, tid] {
      // Pin from inside the thread, before the body runs (the old
      // ParallelRun pinned from the spawner, racing an already-running
      // body).
      if (placement.pin_threads) PinSelfToCore(tid);
      t_numa_node =
          placement.node_of_thread ? placement.node_of_thread(tid) : 0;
      Status st;
      {
        obs::ObsSpan span("task", "exec");
        st = InvokeBody(body, tid);
      }
      results[tid] = CheckEnclaveHygiene(tid, std::move(st));
      t_numa_node = 0;
      CtrTasks().Increment();
    });
  }
  fallback_threads_spawned_.fetch_add(num_threads,
                                      std::memory_order_relaxed);
  CtrGangs().Increment();
  for (auto& t : threads) t.join();
  for (Status& st : results) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace sgxb::exec

namespace sgxb {

// Declared in common/parallel.h; defined here so the task-identity
// thread-locals stay private to this translation unit.
int CurrentNumaNode() { return exec::t_numa_node; }

}  // namespace sgxb
