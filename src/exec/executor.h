// Persistent, placement-aware thread-pool executor.
//
// Every parallel operator in this repro (radix/PHT/CHT joins, scan scaling,
// the mutex avalanche, TPC-H) dispatches its workers through this pool.
// Before it existed, ParallelRun spawned and joined fresh std::threads on
// every call — inside every Repeat iteration of every benchmark — which
// pollutes small measurements with thread-creation cost and bears no
// resemblance to how enclave-resident engines run (a pool of enclave-bound
// threads entering once and processing morsels; see DuckDB-SGX2 in
// PAPERS.md). Workers here are created once and live for the process:
//
//  * pinned at birth: each worker pins *itself* to its core before it
//    reports ready, so no task can start on an arbitrary core (the old
//    ParallelRun raced pthread_setaffinity_np against the running thread);
//  * placement-aware: a worker carries a simulated NUMA node, overridden
//    per task by ThreadPlacement::node_of_thread and readable from inside
//    task bodies via CurrentNumaNode();
//  * failure-capturing: a task body that throws or returns a non-OK Status
//    surfaces as the gang's first error instead of std::terminate;
//  * enclave-aware: task bodies open their own ScopedEcall so transition
//    costs are charged on the worker that pays them on hardware, and the
//    pool checks after every task that the worker left enclave mode (a
//    leaked EnclaveEnter would silently bill every later task).
//
// Scheduling model: a "gang" of n tasks (tid 0..n-1) *leases* n free
// workers from the pool, one task per worker, and releases them when the
// gang completes. Leases are granted in request order (FIFO tickets), so
// a wide gang cannot be starved by a stream of narrow ones, and every
// gang's members run truly concurrently — barrier synchronization inside
// a gang cannot deadlock and cannot stall behind an unrelated gang.
//
// (Earlier versions anchored every gang at workers 0..n-1 and queued
// overlapping gangs FIFO on the same workers. With two concurrent
// queries that meant the first gang claimed every worker and the second
// either serialized wholesale behind it or — worse — had its high-tid
// members start on free workers and spin at an intra-gang barrier while
// its low-tid members were still queued behind the first gang: the
// shared-state starvation this leasing scheme exists to fix. The
// completion handoff is also race-free: slot release and the waiter
// wake-up happen under the single dispatch lock, so a gang waiting for
// workers cannot miss the notify of the release that would satisfy it.)
//
// Fairness: elastic callers (ParallelFor picking its lane count, the
// serving layer capping a query's threads at admission) consult
// GrantedGangSize(), which divides the pool among in-flight gangs and
// applies the serving layer's per-gang worker-share cap, so one heavy
// query cannot monopolize all workers against many cheap ones. Gang
// tasks are never stolen (a stolen gang member would deadlock its
// barrier); work stealing happens one level down, between the morsels of
// a ParallelFor (see ws_deque.h and common/parallel.h).
//
// Nested parallelism: a gang launched from inside a pool worker falls back
// to plain spawned threads (still pinned from inside, still
// failure-capturing), because dispatching to the pool from a pool worker
// could deadlock on pool capacity.

#ifndef SGXB_EXEC_EXECUTOR_H_
#define SGXB_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace sgxb::exec {

/// \brief How ParallelRun/ParallelFor dispatch their gangs. kSpawn restores
/// the legacy thread-per-call behaviour; it exists so the executor ablation
/// can measure exactly what the persistent pool buys.
enum class DispatchMode {
  kPool = 0,
  kSpawn = 1,
};

/// \brief Process-wide dispatch mode. Defaults to kPool; the environment
/// variable SGXBENCH_EXECUTOR=spawn flips the initial value, and benchmarks
/// may switch it at runtime (takes effect for subsequent gangs).
DispatchMode dispatch_mode();
void SetDispatchMode(DispatchMode mode);

/// \brief Monotonic counters describing pool activity since process start.
struct ExecutorStats {
  /// Persistent workers currently alive (the pool grows lazily to the
  /// largest gang ever requested and never shrinks).
  int workers = 0;
  /// Threads ever created for the pool; stable across repeated dispatches
  /// once the pool is warm — the property the ablation demonstrates.
  uint64_t pool_threads_spawned = 0;
  /// Threads created by spawn-mode or nested (fallback) gangs.
  uint64_t fallback_threads_spawned = 0;
  /// Gangs dispatched through the pool (not counting fallbacks).
  uint64_t gangs = 0;
  /// Individual gang tasks executed by pool workers.
  uint64_t tasks = 0;
  /// ParallelFor morsels executed (pool and fallback alike).
  uint64_t morsels = 0;
  /// Morsels a lane took from another lane's deque.
  uint64_t morsel_steals = 0;
  /// Gangs that had to wait for workers to free up before dispatching —
  /// the pool was contended when they arrived.
  uint64_t gang_waits = 0;
  /// Gangs currently holding worker leases.
  int active_gangs = 0;
  /// Workers currently leased to a gang.
  int busy_workers = 0;
};

class Executor {
 public:
  /// \brief The process-wide pool used by ParallelRun/ParallelFor.
  static Executor& Default();

  Executor();
  ~Executor();  // stops and joins all workers
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// \brief Runs body(tid) for tid in [0, num_threads) concurrently, one
  /// task per leased pool worker, and waits for all of them. Blocks until
  /// num_threads workers are free (leases are granted in request order).
  /// Returns the first (lowest-tid) non-OK Status; a body that throws is
  /// captured as an Internal status. num_threads == 1 runs inline on the
  /// caller.
  ///
  /// Bodies of one gang may synchronize with each other (barriers,
  /// queues): all members of a gang hold their workers concurrently, so
  /// intra-gang barriers are deadlock-free even with overlapping gangs.
  Status RunGang(int num_threads, const std::function<Status(int)>& body,
                 const ThreadPlacement& placement = {});

  /// \brief Share-aware gang sizing for *elastic* callers (ParallelFor
  /// picking a lane count, the serving layer capping a query's threads):
  /// returns `want` when the pool is uncontended, else a fair fraction of
  /// the pool given the gangs currently active or waiting, always >= 1
  /// and never more than `want` or the per-gang cap. Rigid gangs (bodies
  /// with barriers sized to a fixed n) should pass their n to RunGang
  /// directly and rely on leasing for correctness.
  int GrantedGangSize(int want);

  /// \brief Hard cap applied by GrantedGangSize (0 = uncapped). Set by
  /// the serving layer from SGXBENCH_SERVE_WORKER_SHARE so no single
  /// query's elastic gangs exceed its worker share while serving.
  void SetMaxWorkersPerGang(int cap);
  int max_workers_per_gang() const;

  /// \brief Grows the pool to at least `n` workers now (the serving layer
  /// prewarms to the host's core count so concurrent queries do not
  /// serialize on a pool sized by the first, smallest gang).
  void EnsurePoolSize(int n);

  ExecutorStats stats() const;

  /// \brief True on a pool worker thread (used to reroute nested gangs).
  static bool OnWorkerThread();

  /// \brief Lanes ParallelFor uses when the caller does not say: the host's
  /// logical core count.
  static int DefaultParallelism();

  /// \brief Morsel accounting hook for ParallelFor.
  void NoteMorsels(uint64_t executed, uint64_t stolen);

 private:
  struct GangState;
  struct Task {
    GangState* gang;
    int tid;
  };
  struct Worker {
    int index = 0;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> tasks;
    bool ready = false;
  };

  // Requires dispatch_mu_. Grows the pool to at least n workers, waiting
  // for each new worker to finish pinning itself before returning.
  void EnsureWorkersLocked(int n);
  void WorkerLoop(Worker* worker);
  void RunTask(const Task& task);
  Status SpawnGang(int num_threads, const std::function<Status(int)>& body,
                   const ThreadPlacement& placement);

  // Guards pool growth and all lease state (busy_, free_count_, tickets).
  // Slot release and waiter wake-up both happen under this lock, which is
  // what makes the gang handoff free of lost wakeups (see file comment).
  mutable std::mutex dispatch_mu_;
  std::condition_variable slots_cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<uint8_t> busy_;  // parallel to workers_: leased to a gang
  int free_count_ = 0;
  uint64_t lease_head_ = 0;  // next ticket to be granted
  uint64_t lease_tail_ = 0;  // next ticket to be issued
  int active_gangs_ = 0;
  std::atomic<int> max_workers_per_gang_{0};
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> pool_threads_spawned_{0};
  std::atomic<uint64_t> fallback_threads_spawned_{0};
  std::atomic<uint64_t> gangs_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> morsels_{0};
  std::atomic<uint64_t> morsel_steals_{0};
  std::atomic<uint64_t> gang_waits_{0};
};

}  // namespace sgxb::exec

#endif  // SGXB_EXEC_EXECUTOR_H_
