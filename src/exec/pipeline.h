// Fused, morsel-driven pipeline driver (docs/pipelines.md).
//
// The paper's query framework is operator-at-a-time: every operator
// fully materializes its output (Section 6), so each query pays a full
// write + re-read round-trip per intermediate — the traffic class
// enclave memory encryption penalizes hardest. This driver runs a whole
// operator chain (filter -> refine -> gather -> probe -> aggregate) as
// ONE pass per morsel on the work-stealing executor: the intermediate
// "row-id list" shrinks to a per-morsel selection vector in worker-local,
// arena-backed scratch that stays cache-resident, and only pipeline
// breakers (hash-table builds, final aggregates) write anything global.
//
// The driver owns the per-lane scratch and the parallel loop; the fused
// operator chain itself is the caller's morsel body (tpch/pipelines.cc
// composes them per query). Lanes optionally run under a ScopedEcall so
// enclave entry is charged once per lane, exactly like the materializing
// operators.

#ifndef SGXB_EXEC_PIPELINE_H_
#define SGXB_EXEC_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/parallel.h"
#include "common/status.h"
#include "common/types.h"
#include "mem/arena.h"

namespace sgxb::mem {
class ArenaPool;
}

namespace sgxb::exec {

/// \brief Mid-query re-decision hook (docs/adaptive.md): called between
/// waves of an adaptive pipeline with the wave index just finished and
/// the grain it ran at; returns the grain for the next wave (0 = keep).
/// Runs on the dispatching thread with no workers in flight, so it may
/// safely consult the obs registry and adjust shared knobs.
using WaveController = std::function<size_t(int wave, size_t grain)>;

struct PipelineConfig {
  /// Span / phase label ("q3.scan_orders", ...). Must outlive the run.
  const char* name = "pipeline";
  int num_threads = 1;
  /// Rows per morsel. The lane scratch (two selection vectors + a tuple
  /// staging buffer, 24 bytes/row) is sized to this, so the working set
  /// of one morsel stays cache-resident: 32 Ki rows = 768 KiB.
  size_t grain = 32 * 1024;
  /// Wrap each lane's whole morsel loop in an sgx::ScopedEcall (one
  /// enclave entry per lane, as on hardware).
  bool enclave_lanes = false;
  /// Resource the lane arenas draw chunks from (required); with a pool
  /// the chunks are recycled across pipelines and queries.
  mem::MemoryResource* resource = nullptr;
  mem::ArenaPool* arena_pool = nullptr;
  /// When set, the pipeline runs as a sequence of *waves* of
  /// `wave_morsels` morsels per lane, invoking the controller at every
  /// wave boundary so the morsel grain (and any knobs the controller
  /// owns, e.g. live probe mode) can change mid-query without
  /// invalidating results. Unset (the default) keeps the historical
  /// single parallel loop — bit-for-bit identical scheduling.
  WaveController wave_controller;
  /// Morsels per lane per wave; small enough to re-decide promptly,
  /// large enough that a wave amortizes its gang dispatch.
  int wave_morsels = 4;
};

/// \brief Worker-local scratch for one pipeline lane: a double-buffered
/// selection vector (absolute row ids) and a tuple staging area for
/// batched probes, all carved from an arena over the query's resource.
class PipelineLane {
 public:
  PipelineLane(int id, mem::MemoryResource* resource,
               mem::ArenaPool* pool)
      : id_(id), arena_(resource, 0, pool) {}

  PipelineLane(const PipelineLane&) = delete;
  PipelineLane& operator=(const PipelineLane&) = delete;

  /// \brief Carves the scratch buffers for `grain`-row morsels.
  Status Reserve(size_t grain);

  int lane_id() const { return id_; }
  size_t capacity() const { return capacity_; }

  /// \brief Input selection vector of the current stage.
  uint64_t* sel_in() { return sel_in_; }
  /// \brief Output selection vector of the current stage.
  uint64_t* sel_out() { return sel_out_; }
  /// \brief Makes the current output the next stage's input (a
  /// refinement consumed sel_in and produced sel_out).
  void FlipSel() { std::swap(sel_in_, sel_out_); }

  /// \brief Staging buffer for batched hash probes: `capacity()` tuples.
  Tuple* stage() { return stage_; }

  /// \brief The lane's arena, for pipeline-specific extra scratch
  /// (thread-local aggregation states, ...). Lane-local: never share
  /// carve-outs across lanes.
  mem::Arena& arena() { return arena_; }

 private:
  int id_;
  mem::Arena arena_;
  size_t capacity_ = 0;
  uint64_t* sel_in_ = nullptr;
  uint64_t* sel_out_ = nullptr;
  Tuple* stage_ = nullptr;
};

/// \brief The fused operator chain, invoked once per morsel. `morsel` is
/// an absolute row range of the pipeline's driving table; the body runs
/// every stage over it (typically: scan into `lane.sel_out()`, FlipSel,
/// refine sel_in -> sel_out, ..., probe/aggregate into lane-local state).
/// A non-OK return aborts the pipeline (remaining morsels are skipped)
/// and is returned from RunMorselPipeline.
using MorselBody = std::function<Status(Range morsel, PipelineLane& lane)>;

/// \brief Runs one pipeline: splits [0, total_rows) into grain-sized
/// morsels scheduled over the work-stealing executor, with per-lane
/// arena-backed scratch and (optionally) one ScopedEcall per lane. Emits
/// a trace span for the pipeline and, when tracing, one per morsel.
Status RunMorselPipeline(size_t total_rows, const PipelineConfig& config,
                         const MorselBody& body);

}  // namespace sgxb::exec

#endif  // SGXB_EXEC_PIPELINE_H_
