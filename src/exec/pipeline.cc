#include "exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/trace.h"
#include "sgx/transition.h"

namespace sgxb::exec {

Status PipelineLane::Reserve(size_t grain) {
  if (grain <= capacity_) return Status::OK();
  auto sel_a = arena_.AllocateArray<uint64_t>(grain);
  if (!sel_a.ok()) return sel_a.status();
  auto sel_b = arena_.AllocateArray<uint64_t>(grain);
  if (!sel_b.ok()) return sel_b.status();
  auto stage = arena_.AllocateArray<Tuple>(grain);
  if (!stage.ok()) return stage.status();
  sel_in_ = sel_a.value();
  sel_out_ = sel_b.value();
  stage_ = stage.value();
  capacity_ = grain;
  return Status::OK();
}

Status RunMorselPipeline(size_t total_rows, const PipelineConfig& config,
                         const MorselBody& body) {
  if (config.resource == nullptr) {
    return Status::InvalidArgument(
        "RunMorselPipeline: config.resource is required");
  }
  if (total_rows == 0) return Status::OK();

  const int lanes = std::max(1, config.num_threads);
  const size_t grain = std::max<size_t>(1, config.grain);

  // Lane scratch is created on the calling thread before the fan-out
  // (Arena is not thread-safe; each lane owns its arena exclusively once
  // the loop starts). With an ArenaPool the chunks come back warm from
  // earlier pipelines, so per-pipeline setup is a few pointer bumps.
  std::vector<std::unique_ptr<PipelineLane>> lane_scratch;
  lane_scratch.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<PipelineLane>(i, config.resource,
                                               config.arena_pool);
    Status s = lane->Reserve(grain);
    if (!s.ok()) return s;
    lane_scratch.push_back(std::move(lane));
  }

  obs::ObsSpan pipeline_span(config.name, "pipeline");

  // First body failure wins; later morsels short-circuit.
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error;

  ParallelForOptions opts;
  opts.num_threads = lanes;
  if (config.enclave_lanes) {
    opts.worker_scope = [](int, const std::function<void()>& run) {
      sgx::ScopedEcall ecall;
      run();
    };
  }

  auto run_body = [&](Range morsel, int lane_id) {
    if (failed.load(std::memory_order_relaxed)) return;
    std::optional<obs::ObsSpan> morsel_span;
    if (obs::TracingEnabled()) {
      morsel_span.emplace(config.name, "morsel");
    }
    Status s = body(morsel, *lane_scratch[static_cast<size_t>(lane_id)]);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = s;
      failed.store(true, std::memory_order_relaxed);
    }
  };

  if (!config.wave_controller) {
    Status loop = ParallelFor(total_rows, grain, run_body, opts);
    if (!loop.ok()) return loop;
    return first_error;
  }

  // Adaptive path: dispatch wave_morsels morsels per lane, consult the
  // controller, maybe re-grain, repeat. Between waves no worker is in
  // flight, so growing the lane scratch (Reserve only ever grows) and
  // changing `wave_grain` are single-threaded operations.
  const size_t wave_morsels =
      static_cast<size_t>(std::max(1, config.wave_morsels));
  size_t wave_grain = grain;
  size_t row = 0;
  int wave = 0;
  while (row < total_rows && !failed.load(std::memory_order_relaxed)) {
    const size_t wave_rows =
        std::min(total_rows - row,
                 wave_grain * static_cast<size_t>(lanes) * wave_morsels);
    const size_t base = row;
    Status loop = ParallelFor(
        wave_rows, wave_grain,
        [&](Range morsel, int lane_id) {
          run_body(Range{morsel.begin + base, morsel.end + base}, lane_id);
        },
        opts);
    if (!loop.ok()) return loop;
    row += wave_rows;
    if (row >= total_rows) break;
    const size_t next = config.wave_controller(++wave, wave_grain);
    if (next != 0 && next != wave_grain) {
      wave_grain = std::max<size_t>(1, next);
      for (auto& lane : lane_scratch) {
        Status s = lane->Reserve(wave_grain);
        if (!s.ok()) return s;
      }
    }
  }
  return first_error;
}

}  // namespace sgxb::exec
