// Fixed-capacity work-stealing deque (Chase–Lev structure).
//
// The executor's morsel scheduler gives every lane of a ParallelFor its own
// deque of morsel indices: the owning lane pops from the bottom (LIFO, so it
// keeps walking its cache-warm neighbourhood) while idle lanes steal from
// the top (FIFO, so thieves take the work farthest from the owner's cursor).
// This is the structure morsel-driven engines use for NUMA-aware scheduling
// (Leis et al., reused by the DuckDB-SGX2 line of work in PAPERS.md).
//
// Unlike the classic Chase–Lev deque this one never grows: ParallelFor
// knows the morsel count up front, so the ring is sized once and Push is
// owner-only seeding. Synchronization uses seq_cst operations on the two
// cursors instead of standalone fences — marginally slower, but correct
// under ThreadSanitizer builds (libtsan does not model fences), which the
// CI sanitizer job requires.

#ifndef SGXB_EXEC_WS_DEQUE_H_
#define SGXB_EXEC_WS_DEQUE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace sgxb::exec {

class WsDeque {
 public:
  /// \brief Outcome of a steal attempt. kLost means another thief (or the
  /// owner taking the last element) won the race; the element still exists
  /// somewhere, so sweeps must retry before concluding the pool is dry.
  enum class Steal { kGot, kEmpty, kLost };

  /// \brief Capacity is rounded up to the next power of two.
  explicit WsDeque(size_t capacity) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<std::atomic<uint64_t>[]>(cap);
  }

  WsDeque(WsDeque&&) = delete;
  WsDeque(const WsDeque&) = delete;

  /// \brief Owner-only. Returns false when the ring is full.
  bool Push(uint64_t value) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > static_cast<int64_t>(mask_)) return false;
    cells_[static_cast<size_t>(b) & mask_].store(value,
                                                 std::memory_order_relaxed);
    // seq_cst publish: a thief that observes the new bottom also observes
    // the cell write (store-release is included in seq_cst ordering).
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// \brief Owner-only LIFO pop. Returns false when the deque is empty.
  bool PopBottom(uint64_t* value) {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // Reserve the bottom slot before examining top; the seq_cst store /
    // load pair on (bottom, top) is what arbitrates the one-element race
    // with concurrent thieves.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *value = cells_[static_cast<size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: fight thieves for it by advancing top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// \brief Thief-side FIFO steal; safe from any thread.
  Steal TrySteal(uint64_t* value) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Steal::kEmpty;
    // Read the cell before claiming it: if the CAS below fails the value is
    // discarded, and the cell is atomic so a concurrent overwrite is not a
    // data race, just a stale read that the failed CAS filters out.
    *value = cells_[static_cast<size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return Steal::kLost;
    }
    return Steal::kGot;
  }

  /// \brief Approximate occupancy (exact when quiescent).
  size_t ApproxSize() const {
    int64_t t = top_.load(std::memory_order_relaxed);
    int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
  size_t mask_;
  alignas(kCacheLineSize) std::atomic<int64_t> top_{0};
  alignas(kCacheLineSize) std::atomic<int64_t> bottom_{0};
};

}  // namespace sgxb::exec

#endif  // SGXB_EXEC_WS_DEQUE_H_
