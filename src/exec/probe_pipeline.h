// Latency-hiding probe pipelines: group prefetching and AMAC.
//
// Every probe in this repo — PHT bucket chains, CHT bitmap+dense lookups,
// B-tree descents, the radix join's in-cache chains — is a short chain of
// data-dependent loads per input tuple. Executed tuple-at-a-time, each
// chain stalls the core for the full miss latency per hop, which is
// exactly the access pattern SGXv2 penalizes hardest (paper Figs. 4-5).
// The probes themselves are independent, though, so their misses can be
// overlapped in software:
//
//  * Group prefetching (Chen et al.): process probes in groups of B.
//    Issue the first-hop prefetch for all B probes, then advance all B by
//    one hop (issuing the next hop's prefetch), until the group drains.
//    All cursors sit at the same chain depth, so a group's stage k
//    prefetches have B-1 cursors' worth of work to hide behind.
//
//  * AMAC (Kocberber et al., asynchronous memory access chaining): keep a
//    ring of W in-flight probe state machines. Each visit advances one
//    cursor one hop and immediately refills it from the input stream when
//    it completes. Unlike group prefetching there is no stage barrier, so
//    chains of differing depth (overflow chains, B-tree levels) cannot
//    stall the whole group behind the deepest chain.
//
// Both drivers run over the same Cursor concept:
//
//   struct Cursor {
//     static constexpr int kPrefetchLines = 1;  // lines per target
//     void Reset(const Tuple& t);  // latch probe, set first target
//     const void* Target() const;  // next address Advance() dereferences;
//                                  // nullptr when the probe is complete
//     void Advance();              // consume the target's data, do the
//                                  // matching work, set the next target
//   };
//
// A cursor may complete during Reset() (empty structure) by exposing a
// null target. Drivers never dereference Target(); they only prefetch it.
//
// Knob resolution: the mode comes from JoinConfig/QueryConfig (default
// from SGXBENCH_PROBE_MODE), sizes from perf::CalibrationParams
// (SGXBENCH_PROBE_BATCH / SGXBENCH_PROBE_DIST) unless the caller pins
// them. For AMAC the ring width *is* the prefetch distance: a state's
// prefetch is issued roughly W visits before its use.

#ifndef SGXB_EXEC_PROBE_PIPELINE_H_
#define SGXB_EXEC_PROBE_PIPELINE_H_

#include <algorithm>
#include <cstring>

#include "common/env.h"
#include "common/prefetch.h"
#include "common/types.h"

namespace sgxb::exec {

/// \brief How a probe loop schedules its data-dependent loads.
enum class ProbeMode {
  /// One probe at a time, each chain walked to completion (baseline).
  kTupleAtATime = 0,
  /// Stage-synchronized groups with software prefetching.
  kGroupPrefetch = 1,
  /// Asynchronous memory access chaining (per-probe state machines).
  kAmac = 2,
};

inline const char* ProbeModeToString(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kTupleAtATime:
      return "tuple";
    case ProbeMode::kGroupPrefetch:
      return "gp";
    case ProbeMode::kAmac:
      return "amac";
  }
  return "unknown";
}

/// \brief Parses "tuple" / "gp" / "amac" (case-sensitive, like the other
/// SGXBENCH_* knobs); anything else falls back to `fallback`.
inline ProbeMode ProbeModeFromString(const char* s, ProbeMode fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "tuple") == 0) return ProbeMode::kTupleAtATime;
  if (std::strcmp(s, "gp") == 0) return ProbeMode::kGroupPrefetch;
  if (std::strcmp(s, "amac") == 0) return ProbeMode::kAmac;
  return fallback;
}

/// \brief SGXBENCH_PROBE_MODE as a ProbeMode: unset -> `fallback`
/// silently, an unrecognized value -> `fallback` with a one-time warning.
inline ProbeMode ProbeModeFromEnv(ProbeMode fallback) {
  const auto v = EnvString("SGXBENCH_PROBE_MODE");
  if (!v.has_value()) return fallback;
  if (*v != "tuple" && *v != "gp" && *v != "amac") {
    sgxb::internal::WarnOnce(
        "SGXBENCH_PROBE_MODE",
        "expected \"tuple\", \"gp\", or \"amac\"; using the default");
    return fallback;
  }
  return ProbeModeFromString(v->c_str(), fallback);
}

/// \brief Process-default probe mode: SGXBENCH_PROBE_MODE, else batched
/// (group prefetching) — the optimized configuration, like
/// KernelFlavor::kUnrolledReordered is for the partitioning loops.
inline ProbeMode DefaultProbeMode() {
  return ProbeModeFromEnv(ProbeMode::kGroupPrefetch);
}

/// \brief Hard cap on group size / ring width; drivers and callers clamp
/// to it so cursor arrays can be stack-allocated and the in-flight state
/// always fits in L1.
inline constexpr int kMaxProbeWidth = 64;

inline int ClampProbeWidth(int width) {
  return std::min(std::max(width, 1), kMaxProbeWidth);
}

/// \brief Group prefetching: probes [0, n) are processed in groups of
/// `group_size`; `cursors` must hold at least `group_size` entries.
template <typename Cursor>
void GroupPrefetchProbe(const Tuple* tuples, size_t n, int group_size,
                        Cursor* cursors) {
  const size_t g = static_cast<size_t>(ClampProbeWidth(group_size));
  for (size_t base = 0; base < n; base += g) {
    const size_t m = std::min(g, n - base);
    // Stage 0: latch the group and issue all first-hop prefetches.
    for (size_t i = 0; i < m; ++i) {
      cursors[i].Reset(tuples[base + i]);
      if (const void* t = cursors[i].Target()) {
        PrefetchReadSpan(t, Cursor::kPrefetchLines);
      }
    }
    // Stage k: advance every live cursor one hop; its stage-k+1 prefetch
    // hides behind the other cursors' stage-k work.
    for (bool live = true; live;) {
      live = false;
      for (size_t i = 0; i < m; ++i) {
        if (cursors[i].Target() == nullptr) continue;
        cursors[i].Advance();
        if (const void* t = cursors[i].Target()) {
          PrefetchReadSpan(t, Cursor::kPrefetchLines);
          live = true;
        }
      }
    }
  }
}

/// \brief AMAC: a ring of `width` in-flight cursors, refilled from the
/// input stream as probes complete. `ring` must hold at least `width`
/// entries.
template <typename Cursor>
void AmacProbe(const Tuple* tuples, size_t n, int width, Cursor* ring) {
  const int w = ClampProbeWidth(width);
  size_t feed = 0;
  auto refill = [&](Cursor& c) {
    // Probes that complete during Reset (no load needed) are drained
    // inline so a ring slot never idles while input remains.
    while (feed < n) {
      c.Reset(tuples[feed++]);
      if (const void* t = c.Target()) {
        PrefetchReadSpan(t, Cursor::kPrefetchLines);
        return true;
      }
    }
    return false;
  };
  int live = 0;
  for (int i = 0; i < w; ++i) {
    if (refill(ring[i])) ++live;
  }
  for (int i = 0; live > 0; i = (i + 1 == w) ? 0 : i + 1) {
    Cursor& c = ring[i];
    if (c.Target() == nullptr) continue;  // drained slot, tail of input
    c.Advance();
    if (const void* t = c.Target()) {
      PrefetchReadSpan(t, Cursor::kPrefetchLines);
    } else if (!refill(c)) {
      --live;
    }
  }
}

/// \brief Runs the batched driver selected by `mode` (must not be
/// kTupleAtATime — the caller keeps its scalar loop as the baseline and
/// dispatches here only for batched modes). `width` is the group size for
/// group prefetching and the ring width for AMAC.
template <typename Cursor>
void BatchedProbe(ProbeMode mode, const Tuple* tuples, size_t n, int width,
                  Cursor* cursors) {
  if (mode == ProbeMode::kAmac) {
    AmacProbe(tuples, n, width, cursors);
  } else {
    GroupPrefetchProbe(tuples, n, width, cursors);
  }
}

}  // namespace sgxb::exec

#endif  // SGXB_EXEC_PROBE_PIPELINE_H_
