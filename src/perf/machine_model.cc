#include "perf/machine_model.h"

#include <algorithm>
#include <cmath>

namespace sgxb::perf {

Log2Curve::Log2Curve(std::vector<std::pair<double, double>> points) {
  pts_.reserve(points.size());
  for (auto& [x, y] : points) pts_.emplace_back(std::log2(x), y);
}

double Log2Curve::At(double x) const {
  double lx = std::log2(std::max(x, 1.0));
  if (lx <= pts_.front().first) return pts_.front().second;
  if (lx >= pts_.back().first) return pts_.back().second;
  for (size_t i = 1; i < pts_.size(); ++i) {
    if (lx <= pts_[i].first) {
      double t = (lx - pts_[i - 1].first) /
                 (pts_[i].first - pts_[i - 1].first);
      return pts_[i - 1].second +
             t * (pts_[i].second - pts_[i - 1].second);
    }
  }
  return pts_.back().second;
}

namespace {

// Latency curve knot points for an Ice Lake class core: L1 ~1.4 ns,
// L2 ~4.5 ns, L3 ~14 ns, DRAM ~82 ns; smooth transition regions between.
Log2Curve MakeLatencyCurve(const CalibrationParams& p) {
  const double l1 = static_cast<double>(p.l1d_bytes);
  const double l2 = static_cast<double>(p.l2_bytes);
  const double l3 = static_cast<double>(p.l3_bytes);
  return Log2Curve({
      {l1 * 0.5, 1.4},
      {l1, 1.6},
      {l2 * 0.5, 3.5},
      {l2, 4.5},
      {l3 * 0.5, 12.0},
      {l3, 16.0},
      {l3 * 4, 60.0},
      {l3 * 16, p.dram_latency_ns},
      {64.0 * 1024 * 1024 * 1024, p.dram_latency_ns * 1.1},
  });
}

// Fig. 5 left: SGX relative performance of dependent random reads.
Log2Curve MakeRandReadRelPerf(const CalibrationParams& p) {
  const double l3 = static_cast<double>(p.l3_bytes);
  const double floor = p.rand_read_relperf_floor;
  return Log2Curve({
      {l3, 1.0},
      {l3 * 2, 0.82},
      {l3 * 8, 0.68},          // ~192 MiB
      {1024.0 * 1024 * 1024, 0.60},
      {4.0 * 1024 * 1024 * 1024, 0.56},
      {16.0 * 1024 * 1024 * 1024, floor},
  });
}

// Fig. 5 right: SGX relative performance of independent random writes.
Log2Curve MakeRandWriteRelPerf(const CalibrationParams& p) {
  const double l3 = static_cast<double>(p.l3_bytes);
  const double floor = p.rand_write_relperf_floor;
  return Log2Curve({
      {l3, 1.0},
      {l3 * 2, 0.75},
      {256.0 * 1024 * 1024, 0.50},  // paper: 2x latency at 256 MB
      {1024.0 * 1024 * 1024, 0.42},
      {8.0 * 1024 * 1024 * 1024, floor},  // paper: ~3x at 8 GB
      {16.0 * 1024 * 1024 * 1024, floor},
  });
}

// Extra cost of one independent random 8-byte write by working set,
// beyond the loop's own compute (which the compute term already covers):
// zero while cache-resident, rising to the DRAM RFO cost.
Log2Curve MakeRandWriteCost(const CalibrationParams& p) {
  const double l2 = static_cast<double>(p.l2_bytes);
  const double l3 = static_cast<double>(p.l3_bytes);
  return Log2Curve({
      {l2, 0.0},
      {l3, 2.0},
      {l3 * 4, 8.0},
      {l3 * 16, p.random_write_cost_ns},
      {64.0 * 1024 * 1024 * 1024, p.random_write_cost_ns * 1.2},
  });
}

}  // namespace

MachineModel::MachineModel(const CalibrationParams& params)
    : params_(params),
      dependent_latency_ns_(MakeLatencyCurve(params)),
      rand_read_relperf_(MakeRandReadRelPerf(params)),
      rand_write_relperf_(MakeRandWriteRelPerf(params)),
      rand_write_cost_ns_(MakeRandWriteCost(params)) {}

const MachineModel& MachineModel::Reference() {
  static const MachineModel kModel(CalibrationParams::Default());
  return kModel;
}

double MachineModel::DependentLoadLatencyNs(size_t working_set,
                                            bool remote) const {
  double lat = dependent_latency_ns_.At(static_cast<double>(working_set));
  if (remote && working_set > params_.l3_bytes) {
    lat *= params_.remote_latency_factor;
  }
  return lat;
}

double MachineModel::RandomWriteCostNs(size_t working_set,
                                       bool remote) const {
  double cost = rand_write_cost_ns_.At(static_cast<double>(working_set));
  if (remote && working_set > params_.l3_bytes) {
    cost *= params_.remote_latency_factor;
  }
  return cost;
}

namespace {

// Per-core streaming-read multiplier over the DRAM rate when the data is
// cache-resident: L1 ~8x, L2 ~4x, L3 ~2.5x DRAM streaming speed.
double CacheStreamBoost(size_t data_bytes, const CalibrationParams& p) {
  if (data_bytes == 0) return 1.0;  // unknown: assume DRAM
  if (data_bytes <= p.l1d_bytes) return 8.0;
  if (data_bytes <= p.l2_bytes) return 4.0;
  if (data_bytes <= p.l3_bytes) return 2.5;
  return 1.0;
}

}  // namespace

double MachineModel::SeqReadBandwidth(int threads, bool remote,
                                      size_t data_bytes) const {
  const double boost = CacheStreamBoost(data_bytes, params_);
  if (boost > 1.0 && !remote) {
    // Cache-resident: private caches scale perfectly with cores.
    return threads * params_.core_read_bandwidth * boost;
  }
  double bw = std::min(threads * params_.core_read_bandwidth,
                       params_.node_read_bandwidth);
  if (remote) bw = std::min(bw, params_.upi_bandwidth);
  return bw;
}

double MachineModel::SeqWriteBandwidth(int threads, bool remote,
                                       size_t data_bytes) const {
  const double boost = CacheStreamBoost(data_bytes, params_);
  if (boost > 1.0 && !remote) {
    return threads * params_.core_write_bandwidth * boost;
  }
  double bw = std::min(threads * params_.core_write_bandwidth,
                       params_.node_write_bandwidth);
  if (remote) bw = std::min(bw, params_.upi_bandwidth * 0.5);
  return bw;
}

double MachineModel::RandomReadRelPerfSgx(size_t working_set) const {
  return rand_read_relperf_.At(static_cast<double>(working_set));
}

double MachineModel::RandomWriteRelPerfSgx(size_t working_set) const {
  return rand_write_relperf_.At(static_cast<double>(working_set));
}

double MachineModel::LinearReadFactorSgx(bool wide_vectors) const {
  return 1.0 + (wide_vectors ? params_.linear_read512_overhead
                             : params_.linear_read64_overhead);
}

double MachineModel::LinearWriteFactorSgx() const {
  return 1.0 + params_.linear_write_overhead;
}

double MachineModel::IlpPenaltySgx(IlpClass ilp) const {
  switch (ilp) {
    case IlpClass::kStreaming:
      return 1.0;
    case IlpClass::kReferenceLoop:
      return params_.ilp_penalty_reference;
    case IlpClass::kUnrolledReordered:
      return params_.ilp_penalty_unrolled;
    case IlpClass::kSimdUnrolled:
      return params_.ilp_penalty_simd;
  }
  return 1.0;
}

double MachineModel::CyclesPerIteration(IlpClass ilp) const {
  switch (ilp) {
    case IlpClass::kStreaming:
      return params_.cycles_per_iter_simd;
    case IlpClass::kReferenceLoop:
      return params_.cycles_per_iter_reference;
    case IlpClass::kUnrolledReordered:
      return params_.cycles_per_iter_unrolled;
    case IlpClass::kSimdUnrolled:
      return params_.cycles_per_iter_simd;
  }
  return 1.0;
}

double MachineModel::EpcPagingFactor(size_t working_set, size_t epc_bytes,
                                     bool sequential) const {
  if (epc_bytes == 0 || working_set <= epc_bytes) return 1.0;
  // Fraction of random accesses that miss the resident EPC subset.
  const double resident = static_cast<double>(epc_bytes) /
                          static_cast<double>(working_set);
  const double miss_rate = 1.0 - resident;
  // An EPC page fault evicts (EWB: encrypt + MAC) and loads (ELDU:
  // decrypt + verify) a 4 KiB page through the kernel: ~40 us.
  constexpr double kFaultNs = 40000.0;
  constexpr double kPageBytes = 4096.0;
  if (sequential) {
    // Streaming touches each page once: one fault per non-resident page,
    // amortized over the page's bytes at streaming speed (~25 ns/4KiB at
    // 170 GB/s).
    const double per_page_stream_ns =
        kPageBytes / params_.node_read_bandwidth * 1e9;
    return 1.0 + miss_rate * kFaultNs / per_page_stream_ns;
  }
  // Random 64 B accesses: each miss pays the fault; a hit costs DRAM
  // latency.
  return 1.0 + miss_rate * kFaultNs / params_.dram_latency_ns;
}

double MachineModel::UpiCryptoRelPerf(int threads) const {
  // The relative cost of UPI encryption shrinks as the link saturates:
  // interpolate between the 1-thread measurement (0.77) and the saturated
  // measurement (0.96) on the *additional* link utilization beyond one
  // core, so one thread reproduces the paper's 77% exactly.
  double extra = (threads - 1) * params_.core_read_bandwidth;
  double headroom =
      params_.upi_bandwidth - params_.core_read_bandwidth;
  double util =
      headroom > 0 ? std::min(1.0, std::max(0.0, extra / headroom)) : 1.0;
  return params_.upi_crypto_relperf_1thread +
         util * (params_.upi_crypto_relperf_saturated -
                 params_.upi_crypto_relperf_1thread);
}

}  // namespace sgxb::perf
