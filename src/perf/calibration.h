// Calibration constants for the SGXv2 performance model.
//
// The reproduction environment has no SGX hardware, so every SGX-specific
// performance effect is modeled. The default constants below are taken
// directly from the paper's own micro-benchmark measurements (figure
// references inline) and from the Table 1 hardware description. Every value
// can be overridden with an SGXBENCH_* environment variable so the model
// can be re-calibrated against real SGXv2 hardware without recompiling.

#ifndef SGXB_PERF_CALIBRATION_H_
#define SGXB_PERF_CALIBRATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"

namespace sgxb::perf {

/// \brief All tunable model parameters with paper-derived defaults.
struct CalibrationParams {
  // --- Reference machine (paper Table 1) -------------------------------
  int sockets = 2;
  int cores_per_socket = 16;
  double base_frequency_hz = 2.9e9;
  size_t l1d_bytes = 48_KiB;
  size_t l2_bytes = 1280_KiB;         // 1.25 MB per core
  size_t l3_bytes = 24_MiB;           // per socket
  size_t epc_per_socket_bytes = 64_GiB;
  size_t dram_per_socket_bytes = 256_GiB;

  /// Practical streaming bandwidth of one socket's 8 DDR4-3200 channels.
  /// Theoretical peak is 204.8 GB/s; ~83% efficiency for reads.
  double node_read_bandwidth = 170e9;   // bytes/s
  double node_write_bandwidth = 85e9;   // bytes/s (write-allocate traffic)
  /// Per-core streaming bandwidth before the memory controller saturates.
  double core_read_bandwidth = 18e9;
  double core_write_bandwidth = 14e9;

  /// Aggregate bandwidth of the 3 UPI links between the sockets
  /// (Section 5.5 quotes 67.2 GB/s as the theoretical upper bound).
  double upi_bandwidth = 67.2e9;

  /// DRAM random-access latency (dependent load, local node).
  double dram_latency_ns = 82.0;
  /// Latency multiplier for accessing the remote NUMA node's DRAM.
  double remote_latency_factor = 1.7;
  /// Memory-level parallelism for independent random accesses per core.
  double mlp_per_core = 8.0;
  /// Effective cost of an independent random 8-byte write to DRAM (RFO
  /// absorbed by MLP and write-combining).
  double random_write_cost_ns = 12.0;

  // --- SGX memory-encryption effects (paper Fig. 5 / Fig. 15) ----------
  /// Relative performance (SGX / native) of dependent random reads as a
  /// function of working-set size: 1.0 while cache-resident, decaying to
  /// 0.53 at 16 GiB (Fig. 5 left).
  double rand_read_relperf_floor = 0.53;
  /// Relative performance of independent random writes: down to 0.50 at
  /// 256 MiB and 0.33 from 8 GiB up (Fig. 5 right).
  double rand_write_relperf_floor = 0.33;
  /// Linear (streaming) access overheads: 5.5% for 64-bit reads, 3% for
  /// 512-bit reads, 2% for writes (Fig. 15, Section 5.4).
  double linear_read64_overhead = 0.055;
  double linear_read512_overhead = 0.03;
  double linear_write_overhead = 0.02;

  // --- Enclave-mode execution effects (paper Fig. 7) -------------------
  /// Slowdown of the reference (Listing 1) read-modify-write loop when the
  /// CPU is in enclave mode: "225% slower" = 3.25x.
  double ilp_penalty_reference = 3.25;
  /// Residual slowdown after manual 8x unroll + reorder (Listing 2): 20%.
  double ilp_penalty_unrolled = 1.20;
  /// Residual slowdown with AVX index buffering ("decreased the difference
  /// further"): 5%.
  double ilp_penalty_simd = 1.05;

  /// Native cycles per iteration of the dominant loop, by ILP class; used
  /// to estimate the compute component of a phase.
  double cycles_per_iter_reference = 1.6;
  double cycles_per_iter_unrolled = 1.4;
  double cycles_per_iter_simd = 0.5;

  // --- Enclave transition / SDK effects (Sections 4.4) -----------------
  /// Cycles for one enclave transition (EENTER or EEXIT path, including
  /// the SDK trampoline); SGX literature reports 8,000-14,000 cycles.
  uint64_t transition_cycles = 8000;
  /// Extra cost of an SDK mutex sleep/wake pair beyond the transitions.
  uint64_t futex_syscall_cycles = 2000;

  // --- Latency-hiding probe pipelines (docs/prefetching.md) -------------
  /// Group size of group-prefetching probe pipelines. The sweet spot
  /// trades prefetch distance against L1/L2 eviction of the group's own
  /// in-flight lines; re-calibrate per host with bench_ablation_prefetch.
  int probe_batch_size = 16;
  /// Ring width of AMAC probe pipelines — the effective prefetch
  /// distance, since a state's prefetch is issued ~width visits before
  /// its use.
  int probe_prefetch_distance = 12;
  /// Effective misses a software-prefetched probe loop keeps in flight:
  /// bounds how much latency a batched probe hides. Hidden random reads
  /// are costed at latency / prefetch_mlp instead of the full dependent
  /// latency per access.
  double prefetch_mlp = 6.0;

  // --- EDMM dynamic enclave growth (paper Fig. 11) ----------------------
  /// Cost to add one 4 KiB page to a running enclave (EAUG + EACCEPT +
  /// zeroing + kernel ioctl); calibrated so that a materializing join in a
  /// minimally-sized enclave retains ~4.5% of static throughput.
  double edmm_page_add_ns = 35000.0;

  // --- UPI encryption (paper Fig. 16) ------------------------------------
  /// Relative performance of a cross-NUMA SGX scan vs a plain cross-NUMA
  /// scan, at 1 thread (0.77) ramping to link saturation (0.96).
  double upi_crypto_relperf_1thread = 0.77;
  double upi_crypto_relperf_saturated = 0.96;

  /// \brief Returns defaults overridden by SGXBENCH_* environment
  /// variables (e.g. SGXBENCH_TRANSITION_CYCLES, SGXBENCH_EDMM_PAGE_NS).
  static CalibrationParams FromEnv();

  /// \brief FromEnv(), routed through the optional calibration cache
  /// file: with SGXBENCH_CALIB_CACHE set, a cache whose machine-model
  /// hash matches is loaded instead of re-resolving, a missing or
  /// stale-hash cache (warn-once) is recomputed and rewritten.
  static CalibrationParams Resolve();

  /// \brief Process-wide instance used unless a caller injects its own
  /// (memoized Resolve()).
  static const CalibrationParams& Default();
};

/// \brief Fingerprint of everything the resolved calibration depends on:
/// the host CPU identity (model, cores, cache sizes) plus every
/// SGXBENCH_* calibration override present in the environment. A cache
/// written on one machine model — or under different overrides — hashes
/// differently and is treated as stale.
std::string CalibrationMachineHash();

/// \brief Writes `p` (plus the current machine hash) to `path` in a
/// key=value text format. Returns false on I/O failure.
bool SaveCalibrationCache(const std::string& path,
                          const CalibrationParams& p);

/// \brief Loads a calibration cache. nullopt when the file is missing,
/// unparseable, or its recorded machine hash does not match
/// CalibrationMachineHash() (the stale case — callers warn and
/// recompute).
std::optional<CalibrationParams> LoadCalibrationCache(
    const std::string& path);

}  // namespace sgxb::perf

#endif  // SGXB_PERF_CALIBRATION_H_
