#include "perf/calibration.h"

#include <cstdlib>

namespace sgxb::perf {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end != v && parsed > 0) ? parsed : fallback;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != v) ? static_cast<uint64_t>(parsed) : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end != v && parsed > 0) ? static_cast<int>(parsed) : fallback;
}

}  // namespace

CalibrationParams CalibrationParams::FromEnv() {
  CalibrationParams p;
  p.transition_cycles =
      EnvU64("SGXBENCH_TRANSITION_CYCLES", p.transition_cycles);
  p.futex_syscall_cycles =
      EnvU64("SGXBENCH_FUTEX_CYCLES", p.futex_syscall_cycles);
  p.edmm_page_add_ns = EnvDouble("SGXBENCH_EDMM_PAGE_NS", p.edmm_page_add_ns);
  p.ilp_penalty_reference =
      EnvDouble("SGXBENCH_ILP_PENALTY_REF", p.ilp_penalty_reference);
  p.ilp_penalty_unrolled =
      EnvDouble("SGXBENCH_ILP_PENALTY_UNROLLED", p.ilp_penalty_unrolled);
  p.ilp_penalty_simd =
      EnvDouble("SGXBENCH_ILP_PENALTY_SIMD", p.ilp_penalty_simd);
  p.rand_read_relperf_floor =
      EnvDouble("SGXBENCH_RAND_READ_FLOOR", p.rand_read_relperf_floor);
  p.rand_write_relperf_floor =
      EnvDouble("SGXBENCH_RAND_WRITE_FLOOR", p.rand_write_relperf_floor);
  p.upi_bandwidth = EnvDouble("SGXBENCH_UPI_BW", p.upi_bandwidth);
  p.node_read_bandwidth =
      EnvDouble("SGXBENCH_NODE_READ_BW", p.node_read_bandwidth);
  p.node_write_bandwidth =
      EnvDouble("SGXBENCH_NODE_WRITE_BW", p.node_write_bandwidth);
  p.probe_batch_size = EnvInt("SGXBENCH_PROBE_BATCH", p.probe_batch_size);
  p.probe_prefetch_distance =
      EnvInt("SGXBENCH_PROBE_DIST", p.probe_prefetch_distance);
  p.prefetch_mlp = EnvDouble("SGXBENCH_PREFETCH_MLP", p.prefetch_mlp);
  return p;
}

const CalibrationParams& CalibrationParams::Default() {
  static const CalibrationParams kParams = FromEnv();
  return kParams;
}

}  // namespace sgxb::perf
