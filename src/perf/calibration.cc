#include "perf/calibration.h"

#include <limits>

#include "common/env.h"

namespace sgxb::perf {

namespace {
// Calibration overrides must be positive; zero or negative bandwidths and
// penalties would divide the cost model by zero.
constexpr double kPos = std::numeric_limits<double>::min();
constexpr double kMax = std::numeric_limits<double>::max();

double PosDouble(const char* name, double fallback) {
  return EnvDouble(name, fallback, kPos, kMax);
}
}  // namespace

CalibrationParams CalibrationParams::FromEnv() {
  CalibrationParams p;
  p.transition_cycles =
      EnvUint("SGXBENCH_TRANSITION_CYCLES", p.transition_cycles);
  p.futex_syscall_cycles =
      EnvUint("SGXBENCH_FUTEX_CYCLES", p.futex_syscall_cycles);
  p.edmm_page_add_ns = PosDouble("SGXBENCH_EDMM_PAGE_NS", p.edmm_page_add_ns);
  p.ilp_penalty_reference =
      PosDouble("SGXBENCH_ILP_PENALTY_REF", p.ilp_penalty_reference);
  p.ilp_penalty_unrolled =
      PosDouble("SGXBENCH_ILP_PENALTY_UNROLLED", p.ilp_penalty_unrolled);
  p.ilp_penalty_simd =
      PosDouble("SGXBENCH_ILP_PENALTY_SIMD", p.ilp_penalty_simd);
  p.rand_read_relperf_floor =
      PosDouble("SGXBENCH_RAND_READ_FLOOR", p.rand_read_relperf_floor);
  p.rand_write_relperf_floor =
      PosDouble("SGXBENCH_RAND_WRITE_FLOOR", p.rand_write_relperf_floor);
  p.upi_bandwidth = PosDouble("SGXBENCH_UPI_BW", p.upi_bandwidth);
  p.node_read_bandwidth =
      PosDouble("SGXBENCH_NODE_READ_BW", p.node_read_bandwidth);
  p.node_write_bandwidth =
      PosDouble("SGXBENCH_NODE_WRITE_BW", p.node_write_bandwidth);
  p.probe_batch_size = static_cast<int>(
      EnvInt("SGXBENCH_PROBE_BATCH", p.probe_batch_size, /*lo=*/1,
             /*hi=*/1 << 20));
  p.probe_prefetch_distance = static_cast<int>(
      EnvInt("SGXBENCH_PROBE_DIST", p.probe_prefetch_distance, /*lo=*/1,
             /*hi=*/1 << 20));
  p.prefetch_mlp = PosDouble("SGXBENCH_PREFETCH_MLP", p.prefetch_mlp);
  return p;
}

const CalibrationParams& CalibrationParams::Default() {
  static const CalibrationParams kParams = FromEnv();
  return kParams;
}

}  // namespace sgxb::perf
