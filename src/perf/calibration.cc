#include "perf/calibration.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <type_traits>

#include "common/cpu_info.h"
#include "common/env.h"

namespace sgxb::perf {

namespace {
// Calibration overrides must be positive; zero or negative bandwidths and
// penalties would divide the cost model by zero.
constexpr double kPos = std::numeric_limits<double>::min();
constexpr double kMax = std::numeric_limits<double>::max();

double PosDouble(const char* name, double fallback) {
  return EnvDouble(name, fallback, kPos, kMax);
}

// Every numeric field, visited with a stable name — the single source of
// truth for the cache file format (Save writes it, Load assigns it).
template <typename P, typename F>
void VisitCalibrationFields(P& p, F&& f) {
  f("sockets", p.sockets);
  f("cores_per_socket", p.cores_per_socket);
  f("base_frequency_hz", p.base_frequency_hz);
  f("l1d_bytes", p.l1d_bytes);
  f("l2_bytes", p.l2_bytes);
  f("l3_bytes", p.l3_bytes);
  f("epc_per_socket_bytes", p.epc_per_socket_bytes);
  f("dram_per_socket_bytes", p.dram_per_socket_bytes);
  f("node_read_bandwidth", p.node_read_bandwidth);
  f("node_write_bandwidth", p.node_write_bandwidth);
  f("core_read_bandwidth", p.core_read_bandwidth);
  f("core_write_bandwidth", p.core_write_bandwidth);
  f("upi_bandwidth", p.upi_bandwidth);
  f("dram_latency_ns", p.dram_latency_ns);
  f("remote_latency_factor", p.remote_latency_factor);
  f("mlp_per_core", p.mlp_per_core);
  f("random_write_cost_ns", p.random_write_cost_ns);
  f("rand_read_relperf_floor", p.rand_read_relperf_floor);
  f("rand_write_relperf_floor", p.rand_write_relperf_floor);
  f("linear_read64_overhead", p.linear_read64_overhead);
  f("linear_read512_overhead", p.linear_read512_overhead);
  f("linear_write_overhead", p.linear_write_overhead);
  f("ilp_penalty_reference", p.ilp_penalty_reference);
  f("ilp_penalty_unrolled", p.ilp_penalty_unrolled);
  f("ilp_penalty_simd", p.ilp_penalty_simd);
  f("cycles_per_iter_reference", p.cycles_per_iter_reference);
  f("cycles_per_iter_unrolled", p.cycles_per_iter_unrolled);
  f("cycles_per_iter_simd", p.cycles_per_iter_simd);
  f("transition_cycles", p.transition_cycles);
  f("futex_syscall_cycles", p.futex_syscall_cycles);
  f("probe_batch_size", p.probe_batch_size);
  f("probe_prefetch_distance", p.probe_prefetch_distance);
  f("prefetch_mlp", p.prefetch_mlp);
  f("edmm_page_add_ns", p.edmm_page_add_ns);
  f("upi_crypto_relperf_1thread", p.upi_crypto_relperf_1thread);
  f("upi_crypto_relperf_saturated", p.upi_crypto_relperf_saturated);
}

// The calibration env overrides that feed FromEnv(); part of the machine
// hash so a cache written under one override set never masks another.
constexpr const char* kCalibrationEnvKnobs[] = {
    "SGXBENCH_TRANSITION_CYCLES", "SGXBENCH_FUTEX_CYCLES",
    "SGXBENCH_EDMM_PAGE_NS",      "SGXBENCH_ILP_PENALTY_REF",
    "SGXBENCH_ILP_PENALTY_UNROLLED", "SGXBENCH_ILP_PENALTY_SIMD",
    "SGXBENCH_RAND_READ_FLOOR",   "SGXBENCH_RAND_WRITE_FLOOR",
    "SGXBENCH_UPI_BW",            "SGXBENCH_NODE_READ_BW",
    "SGXBENCH_NODE_WRITE_BW",     "SGXBENCH_PROBE_BATCH",
    "SGXBENCH_PROBE_DIST",        "SGXBENCH_PREFETCH_MLP",
};

uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

std::string CalibrationMachineHash() {
  const CpuInfo& cpu = CpuInfo::Host();
  uint64_t h = 14695981039346656037ull;
  h = Fnv1a(h, cpu.model_name);
  h = Fnv1a(h, std::to_string(cpu.logical_cores));
  h = Fnv1a(h, std::to_string(cpu.l1d_bytes));
  h = Fnv1a(h, std::to_string(cpu.l2_bytes));
  h = Fnv1a(h, std::to_string(cpu.l3_bytes));
  h = Fnv1a(h, std::to_string(static_cast<int>(cpu.max_simd)));
  for (const char* knob : kCalibrationEnvKnobs) {
    if (std::optional<std::string> v = EnvString(knob)) {
      h = Fnv1a(h, std::string(knob) + "=" + *v);
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool SaveCalibrationCache(const std::string& path,
                          const CalibrationParams& p) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "machine_hash=%s\n", CalibrationMachineHash().c_str());
  VisitCalibrationFields(p, [&](const char* name, const auto& v) {
    // %.17g round-trips every double exactly; integer fields print
    // integral and parse back losslessly far beyond any plausible value.
    std::fprintf(f, "%s=%.17g\n", name, static_cast<double>(v));
  });
  return std::fclose(f) == 0;
}

std::optional<CalibrationParams> LoadCalibrationCache(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  std::map<std::string, std::string> kv;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    const size_t eq = s.find('=');
    if (eq == std::string::npos) continue;
    kv[s.substr(0, eq)] = s.substr(eq + 1);
  }
  std::fclose(f);
  auto hash = kv.find("machine_hash");
  if (hash == kv.end() || hash->second != CalibrationMachineHash()) {
    return std::nullopt;
  }
  CalibrationParams p;
  bool complete = true;
  VisitCalibrationFields(p, [&](const char* name, auto& v) {
    auto it = kv.find(name);
    if (it == kv.end()) {
      complete = false;
      return;
    }
    char* end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      complete = false;
      return;
    }
    v = static_cast<std::remove_reference_t<decltype(v)>>(parsed);
  });
  if (!complete) return std::nullopt;
  return p;
}

CalibrationParams CalibrationParams::FromEnv() {
  CalibrationParams p;
  p.transition_cycles =
      EnvUint("SGXBENCH_TRANSITION_CYCLES", p.transition_cycles);
  p.futex_syscall_cycles =
      EnvUint("SGXBENCH_FUTEX_CYCLES", p.futex_syscall_cycles);
  p.edmm_page_add_ns = PosDouble("SGXBENCH_EDMM_PAGE_NS", p.edmm_page_add_ns);
  p.ilp_penalty_reference =
      PosDouble("SGXBENCH_ILP_PENALTY_REF", p.ilp_penalty_reference);
  p.ilp_penalty_unrolled =
      PosDouble("SGXBENCH_ILP_PENALTY_UNROLLED", p.ilp_penalty_unrolled);
  p.ilp_penalty_simd =
      PosDouble("SGXBENCH_ILP_PENALTY_SIMD", p.ilp_penalty_simd);
  p.rand_read_relperf_floor =
      PosDouble("SGXBENCH_RAND_READ_FLOOR", p.rand_read_relperf_floor);
  p.rand_write_relperf_floor =
      PosDouble("SGXBENCH_RAND_WRITE_FLOOR", p.rand_write_relperf_floor);
  p.upi_bandwidth = PosDouble("SGXBENCH_UPI_BW", p.upi_bandwidth);
  p.node_read_bandwidth =
      PosDouble("SGXBENCH_NODE_READ_BW", p.node_read_bandwidth);
  p.node_write_bandwidth =
      PosDouble("SGXBENCH_NODE_WRITE_BW", p.node_write_bandwidth);
  p.probe_batch_size = static_cast<int>(
      EnvInt("SGXBENCH_PROBE_BATCH", p.probe_batch_size, /*lo=*/1,
             /*hi=*/1 << 20));
  p.probe_prefetch_distance = static_cast<int>(
      EnvInt("SGXBENCH_PROBE_DIST", p.probe_prefetch_distance, /*lo=*/1,
             /*hi=*/1 << 20));
  p.prefetch_mlp = PosDouble("SGXBENCH_PREFETCH_MLP", p.prefetch_mlp);
  return p;
}

CalibrationParams CalibrationParams::Resolve() {
  const std::optional<std::string> path = EnvString("SGXBENCH_CALIB_CACHE");
  if (!path.has_value()) return FromEnv();
  if (std::optional<CalibrationParams> cached = LoadCalibrationCache(*path)) {
    return *cached;
  }
  // Missing or stale: recompute and rewrite. Only a hash mismatch on an
  // existing file warrants the warning — a first run is just cold.
  if (std::FILE* f = std::fopen(path->c_str(), "r")) {
    std::fclose(f);
    internal::WarnOnce("SGXBENCH_CALIB_CACHE",
                       "cache at " + *path +
                           " has a stale machine-model hash; recalibrating");
  }
  const CalibrationParams p = FromEnv();
  if (!SaveCalibrationCache(*path, p)) {
    internal::WarnOnce("SGXBENCH_CALIB_CACHE",
                       "cannot write calibration cache at " + *path);
  }
  return p;
}

const CalibrationParams& CalibrationParams::Default() {
  static const CalibrationParams kParams = Resolve();
  return kParams;
}

}  // namespace sgxb::perf
