#include "perf/access_profile.h"

#include <algorithm>

namespace sgxb::perf {

const char* IlpClassToString(IlpClass c) {
  switch (c) {
    case IlpClass::kStreaming:
      return "streaming";
    case IlpClass::kReferenceLoop:
      return "reference-loop";
    case IlpClass::kUnrolledReordered:
      return "unrolled";
    case IlpClass::kSimdUnrolled:
      return "simd-unrolled";
  }
  return "unknown";
}

AccessProfile& AccessProfile::Merge(const AccessProfile& other) {
  seq_read_bytes += other.seq_read_bytes;
  seq_write_bytes += other.seq_write_bytes;
  rand_reads += other.rand_reads;
  rand_read_working_set =
      std::max(rand_read_working_set, other.rand_read_working_set);
  rand_reads_dependent = rand_reads_dependent || other.rand_reads_dependent;
  hidden_random_reads += other.hidden_random_reads;
  rand_writes += other.rand_writes;
  rand_write_working_set =
      std::max(rand_write_working_set, other.rand_write_working_set);
  loop_iterations += other.loop_iterations;
  // The merged ILP class is the weakest one involved: a reference loop
  // anywhere dominates the enclave penalty.
  ilp = std::min(ilp, other.ilp, [](IlpClass a, IlpClass b) {
    auto rank = [](IlpClass c) {
      switch (c) {
        case IlpClass::kReferenceLoop:
          return 0;
        case IlpClass::kUnrolledReordered:
          return 1;
        case IlpClass::kSimdUnrolled:
          return 2;
        case IlpClass::kStreaming:
          return 3;
      }
      return 3;
    };
    return rank(a) < rank(b);
  });
  wide_vectors = wide_vectors && other.wide_vectors;
  return *this;
}

AccessProfile AccessProfile::ScaledBy(double factor) const {
  AccessProfile p = *this;
  auto scale = [factor](uint64_t v) {
    return static_cast<uint64_t>(static_cast<double>(v) * factor);
  };
  p.seq_read_bytes = scale(p.seq_read_bytes);
  p.seq_write_bytes = scale(p.seq_write_bytes);
  p.seq_data_bytes = scale(p.seq_data_bytes);
  p.rand_reads = scale(p.rand_reads);
  p.rand_read_working_set = scale(p.rand_read_working_set);
  p.hidden_random_reads = scale(p.hidden_random_reads);
  p.rand_writes = scale(p.rand_writes);
  p.rand_write_working_set = scale(p.rand_write_working_set);
  p.loop_iterations = scale(p.loop_iterations);
  return p;
}

double PhaseBreakdown::TotalHostNs() const {
  double total = 0;
  for (const auto& p : phases) total += p.host_ns;
  return total;
}

const PhaseStats* PhaseBreakdown::Find(const std::string& name) const {
  for (const auto& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace sgxb::perf
