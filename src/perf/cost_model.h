// The SGXv2 cost model: (access profile, execution environment) -> time.
//
// Given a phase's AccessProfile, the model decomposes its runtime on the
// reference machine into compute / sequential / random components, applies
// the SGX multipliers to each component, and reports either an absolute
// estimate (for modeled reference-machine series) or a slowdown factor
// relative to Plain CPU (for scaling real host measurements into the three
// execution settings).

#ifndef SGXB_PERF_COST_MODEL_H_
#define SGXB_PERF_COST_MODEL_H_

#include <optional>

#include "common/types.h"
#include "perf/access_profile.h"
#include "perf/machine_model.h"

namespace sgxb::perf {

/// \brief Where code runs and where data lives for one phase execution.
struct ExecutionEnv {
  ExecutionSetting setting = ExecutionSetting::kPlainCpu;
  /// Number of worker threads executing the phase concurrently.
  int threads = 1;
  /// True if data sits on the other socket than the executing threads
  /// (cross-NUMA over UPI).
  bool data_remote = false;
  /// Actual placement of the phase's data, read from the mem:: resource
  /// that allocated it (mem::EnvFor). When set it overrides the
  /// setting-derived encryption guess below; when unset (the default —
  /// and the right choice for benches that model ONE measured profile
  /// under several hypothetical settings) the setting decides.
  std::optional<MemoryRegion> data_region;

  bool InEnclave() const {
    return setting != ExecutionSetting::kPlainCpu;
  }
  bool DataEncrypted() const {
    if (data_region.has_value()) {
      return *data_region == MemoryRegion::kEnclave;
    }
    return setting == ExecutionSetting::kSgxDataInEnclave;
  }
};

/// \brief Per-component estimate, so benches can print breakdowns.
struct CostBreakdown {
  double compute_ns = 0;
  double seq_read_ns = 0;
  double seq_write_ns = 0;
  double rand_read_ns = 0;
  double rand_write_ns = 0;

  double TotalNs() const {
    return compute_ns + seq_read_ns + seq_write_ns + rand_read_ns +
           rand_write_ns;
  }
};

class CostModel {
 public:
  explicit CostModel(const MachineModel& machine) : machine_(machine) {}

  /// \brief Cost model over the paper's Table 1 machine.
  static const CostModel& Reference();

  /// \brief Estimated runtime of the phase on the reference machine.
  CostBreakdown Estimate(const AccessProfile& profile,
                         const ExecutionEnv& env) const;

  double EstimateNanos(const AccessProfile& profile,
                       const ExecutionEnv& env) const {
    return Estimate(profile, env).TotalNs();
  }

  /// \brief Ratio Estimate(env) / Estimate(same env but Plain CPU, local
  /// data). Multiplying a real host measurement of the native execution by
  /// this factor yields the modeled time under `env`.
  double SlowdownFactor(const AccessProfile& profile,
                        const ExecutionEnv& env) const;

  const MachineModel& machine() const { return machine_; }

 private:
  const MachineModel& machine_;
};

/// \brief Modeled round-trip cost of materializing `bytes` of operator
/// output under `env`: written once by the producer and re-read once by
/// the consumer. This is the traffic class enclave memory encryption
/// penalizes hardest, and exactly what the fused pipelines avoid — the
/// per-query `tpch.bytes_materialized` counter times this rate is the
/// modeled saving (docs/pipelines.md, bench_ablation_pipeline).
double MaterializationTrafficNs(const CostModel& model, uint64_t bytes,
                                const ExecutionEnv& env);

}  // namespace sgxb::perf

#endif  // SGXB_PERF_COST_MODEL_H_
