// Analytical model of the paper's reference machine (Table 1): a
// dual-socket Xeon Gold 6326 with SGXv2.
//
// The model answers latency/bandwidth questions about that machine, both in
// native mode and inside an SGXv2 enclave, using curves fitted to the
// paper's micro-benchmarks (Figures 5, 7, 15, 16). It is the substitute for
// the SGXv2 silicon this reproduction does not have; see DESIGN.md.

#ifndef SGXB_PERF_MACHINE_MODEL_H_
#define SGXB_PERF_MACHINE_MODEL_H_

#include <cstddef>
#include <vector>

#include "perf/access_profile.h"
#include "perf/calibration.h"

namespace sgxb::perf {

/// \brief Piecewise-linear curve in log2(x) space; clamps outside the
/// defined range. Used for latency and relative-performance curves.
class Log2Curve {
 public:
  /// Points must be sorted by x ascending.
  explicit Log2Curve(std::vector<std::pair<double, double>> points);
  double At(double x) const;

 private:
  std::vector<std::pair<double, double>> pts_;  // (log2 x, y)
};

class MachineModel {
 public:
  explicit MachineModel(const CalibrationParams& params);

  /// \brief Model of the paper's machine with default calibration.
  static const MachineModel& Reference();

  const CalibrationParams& params() const { return params_; }
  int total_cores() const {
    return params_.sockets * params_.cores_per_socket;
  }

  // --- Native-mode memory behaviour -----------------------------------

  /// \brief Latency of one dependent (pointer-chase) load over a working
  /// set of `working_set` bytes, local or remote node.
  double DependentLoadLatencyNs(size_t working_set, bool remote) const;

  /// \brief Effective cost of one independent random 8-byte write over a
  /// `working_set`-byte structure (MLP and write-combining included).
  double RandomWriteCostNs(size_t working_set, bool remote) const;

  /// \brief Aggregate sequential read bandwidth for `threads` cores on one
  /// socket; `remote` routes the traffic over UPI. `data_bytes` is the
  /// size of the streamed structure: cache-resident streams run at cache
  /// bandwidth (0 = assume DRAM-resident).
  double SeqReadBandwidth(int threads, bool remote,
                          size_t data_bytes = 0) const;
  double SeqWriteBandwidth(int threads, bool remote,
                           size_t data_bytes = 0) const;

  // --- SGX relative-performance curves (enclave vs native) -------------

  /// \brief Fig. 5 left: relative performance of dependent random reads
  /// hitting EPC data, by working-set size.
  double RandomReadRelPerfSgx(size_t working_set) const;

  /// \brief Fig. 5 right: relative performance of independent random
  /// writes to EPC data, by working-set size.
  double RandomWriteRelPerfSgx(size_t working_set) const;

  /// \brief Fig. 15: streaming overhead factor (>= 1) for EPC data;
  /// smaller for 512-bit vector access than for 64-bit scalar access.
  double LinearReadFactorSgx(bool wide_vectors) const;
  double LinearWriteFactorSgx() const;

  /// \brief Fig. 7: enclave-mode execution penalty (>= 1) by ILP class;
  /// independent of data location.
  double IlpPenaltySgx(IlpClass ilp) const;

  /// \brief Native cycles per iteration of the dominant loop by ILP class.
  double CyclesPerIteration(IlpClass ilp) const;

  /// \brief Fig. 16: relative performance of SGX cross-NUMA traffic vs
  /// plain cross-NUMA traffic, improving as the UPI link saturates.
  double UpiCryptoRelPerf(int threads) const;

  /// \brief True if `working_set` fits the socket's combined caches.
  bool CacheResident(size_t working_set) const {
    return working_set <= params_.l3_bytes;
  }

  /// \brief EPC paging multiplier (>= 1): the slowdown of enclave memory
  /// access once the working set exceeds an EPC of `epc_bytes`.
  ///
  /// Extension beyond the paper's scope: the paper sizes all workloads to
  /// fit SGXv2's 64 GB EPC precisely to avoid this effect, but cites the
  /// orders-of-magnitude SGXv1 slowdowns it causes. The model charges an
  /// EWB+ELDU page round-trip (~40 us for 4 KiB) for the miss fraction of
  /// accesses under a random-replacement assumption, reproducing the
  /// SGXv1 cliff that motivated CrkJoin.
  double EpcPagingFactor(size_t working_set, size_t epc_bytes,
                         bool sequential) const;

 private:
  CalibrationParams params_;
  Log2Curve dependent_latency_ns_;
  Log2Curve rand_read_relperf_;
  Log2Curve rand_write_relperf_;
  Log2Curve rand_write_cost_ns_;
};

}  // namespace sgxb::perf

#endif  // SGXB_PERF_MACHINE_MODEL_H_
