// Per-phase memory-access profiles.
//
// Every operator phase (histogram, partition copy, hash build, probe, scan,
// sort, merge, ...) describes its memory behaviour in an AccessProfile. The
// cost model turns a profile plus an execution setting into an estimated
// runtime on the reference machine and into an SGX slowdown factor. Because
// the profiles are emitted by the *real* algorithm execution (actual
// working-set sizes, actual tuple counts), crossover behaviour — e.g. a
// hash table outgrowing the L3 — emerges from the algorithms, not from
// per-figure constants.

#ifndef SGXB_PERF_ACCESS_PROFILE_H_
#define SGXB_PERF_ACCESS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sgxb::perf {

/// \brief Instruction-level-parallelism class of a phase's dominant loop;
/// determines the enclave-mode execution penalty (paper Section 4.2).
enum class IlpClass {
  /// Streaming/SIMD loop with no loop-carried dependency (e.g. a scan).
  kStreaming = 0,
  /// Listing-1-style read-modify-write loop; the CPU's dynamic unrolling
  /// is what enclave mode restricts, so this class is hit hardest (3.25x).
  kReferenceLoop = 1,
  /// Listing-2-style manual 8x unroll with grouped index computation.
  kUnrolledReordered = 2,
  /// AVX-register index buffering (the paper's deepest unroll).
  kSimdUnrolled = 3,
};

const char* IlpClassToString(IlpClass c);

/// \brief Memory/compute footprint of one operator phase.
struct AccessProfile {
  /// Bytes read with a sequential pattern (prefetcher-friendly).
  uint64_t seq_read_bytes = 0;
  /// Bytes written with a sequential pattern.
  uint64_t seq_write_bytes = 0;
  /// Size of the structure being streamed (one pass); repeated scans of
  /// a cache-resident structure run at cache bandwidth with no SGX
  /// penalty (Fig. 12). 0 = unknown, assume larger than cache.
  uint64_t seq_data_bytes = 0;

  /// Count of random reads and the size of the structure they hit.
  uint64_t rand_reads = 0;
  uint64_t rand_read_working_set = 0;
  /// True if each random read depends on the previous one (pointer chase).
  bool rand_reads_dependent = false;
  /// Of `rand_reads`, how many have their miss latency hidden by a
  /// software-prefetched probe pipeline (group prefetching / AMAC, see
  /// exec/probe_pipeline.h). Hidden reads are costed as pipelined misses
  /// (latency / prefetch_mlp) even when `rand_reads_dependent` is set —
  /// the chains belong to *independent* probes — and they dodge both the
  /// enclave MLP loss and the SGX random-read latency penalty, which is
  /// the point of batching the probes.
  uint64_t hidden_random_reads = 0;

  /// Count of random writes and the size of the structure they hit.
  uint64_t rand_writes = 0;
  uint64_t rand_write_working_set = 0;

  /// Iterations of the dominant loop (used for the compute estimate).
  uint64_t loop_iterations = 0;
  IlpClass ilp = IlpClass::kStreaming;

  /// Native cycles per loop iteration when the IlpClass default is a bad
  /// fit (e.g. CrkJoin's branch-mispredict-bound swap loop); 0 = use the
  /// class default.
  double cpi_hint = 0;

  /// True if the streaming loads/stores use 512-bit vectors (lower linear
  /// SGX overhead than 64-bit scalar accesses, paper Fig. 15).
  bool wide_vectors = false;

  /// True if independent random accesses are grouped in software (the
  /// unroll-and-reorder optimization computes 8 hashes before issuing 8
  /// accesses). Without this, enclave mode's restricted reordering also
  /// limits how many misses the reference loop keeps in flight, which is
  /// why unrolling speeds up the *memory-bound* PHT phases (Fig. 8).
  bool software_mlp = false;

  /// \brief Element-wise sum; working sets take the max, flags the OR.
  AccessProfile& Merge(const AccessProfile& other);

  /// \brief Returns the profile with all volumes (bytes, access counts,
  /// iterations) and working-set sizes multiplied by `factor`. Used to
  /// evaluate a host-validated execution at the paper's workload scale.
  AccessProfile ScaledBy(double factor) const;
};

/// \brief A named phase with its real measured time and its profile.
struct PhaseStats {
  std::string name;
  /// Wall time of the real execution on the host, in nanoseconds.
  double host_ns = 0;
  AccessProfile profile;
  /// Threads that executed this phase concurrently.
  int threads = 1;
  /// True for phases that cannot be parallelized (e.g. CrkJoin's
  /// top-level cracking); modeling never scales these to more threads.
  bool inherently_serial = false;
};

/// \brief Ordered list of phases recorded by one operator execution.
struct PhaseBreakdown {
  std::vector<PhaseStats> phases;

  void Add(PhaseStats s) { phases.push_back(std::move(s)); }
  double TotalHostNs() const;
  const PhaseStats* Find(const std::string& name) const;
};

}  // namespace sgxb::perf

#endif  // SGXB_PERF_ACCESS_PROFILE_H_
