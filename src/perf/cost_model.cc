#include "perf/cost_model.h"

#include <algorithm>

namespace sgxb::perf {

namespace {
// Extra slowdown of un-grouped random access loops in enclave mode (on
// top of the memory-encryption curves): the reference loop cannot keep as
// many misses in flight. Calibrated so the PHT optimization gain and the
// Fig. 4 relative-performance points land near the paper's.
constexpr double kEnclaveMlpLossFactor = 1.3;
}  // namespace

const CostModel& CostModel::Reference() {
  static const CostModel kModel(MachineModel::Reference());
  return kModel;
}

CostBreakdown CostModel::Estimate(const AccessProfile& p,
                                  const ExecutionEnv& env) const {
  const CalibrationParams& cal = machine_.params();
  const int threads = std::max(1, env.threads);
  const bool remote = env.data_remote;
  CostBreakdown out;

  // --- Compute: dominant loop iterations at the class's native CPI. ----
  {
    double cpi = p.cpi_hint > 0 ? p.cpi_hint
                                : machine_.CyclesPerIteration(p.ilp);
    double cycles = static_cast<double>(p.loop_iterations) * cpi;
    out.compute_ns = cycles / cal.base_frequency_hz * 1e9 / threads;
    if (env.InEnclave()) {
      // Enclave-mode instruction-reordering restriction (Fig. 7); applies
      // regardless of where the data lives.
      out.compute_ns *= machine_.IlpPenaltySgx(p.ilp);
    }
  }

  // --- Sequential traffic: bandwidth-bound. -----------------------------
  {
    double read_bw =
        machine_.SeqReadBandwidth(threads, remote, p.seq_data_bytes);
    double write_bw =
        machine_.SeqWriteBandwidth(threads, remote, p.seq_data_bytes);
    out.seq_read_ns =
        static_cast<double>(p.seq_read_bytes) / read_bw * 1e9;
    out.seq_write_ns =
        static_cast<double>(p.seq_write_bytes) / write_bw * 1e9;
    // Cache-resident data is plaintext in the caches: no MEE cost
    // (Fig. 12's in-cache points are equal across settings).
    const bool cache_resident =
        p.seq_data_bytes != 0 && p.seq_data_bytes <= cal.l3_bytes;
    if (env.DataEncrypted() && !cache_resident) {
      out.seq_read_ns *= machine_.LinearReadFactorSgx(p.wide_vectors);
      out.seq_write_ns *= machine_.LinearWriteFactorSgx();
    }
  }

  // --- Random reads. ----------------------------------------------------
  if (p.rand_reads > 0) {
    double lat = machine_.DependentLoadLatencyNs(p.rand_read_working_set,
                                                 remote);
    // Reads a software-prefetched probe pipeline keeps in flight are
    // pipelined at latency / prefetch_mlp regardless of chain dependence
    // (the chains belong to independent probes); the rest are exposed.
    const uint64_t hidden = std::min(p.hidden_random_reads, p.rand_reads);
    const uint64_t exposed = p.rand_reads - hidden;
    // Random line fetches also consume bandwidth; never run faster than
    // the memory system can deliver cache lines. Applied per share so the
    // exposed share's SGX penalties stack on its floor exactly as before
    // this split existed.
    auto bw_floor_ns = [&](uint64_t reads) {
      return static_cast<double>(reads) * kCacheLineSize /
             machine_.SeqReadBandwidth(threads, remote) * 1e9;
    };
    const bool out_of_cache = p.rand_read_working_set > cal.l3_bytes;

    double exposed_per_access =
        p.rand_reads_dependent ? lat : lat / cal.mlp_per_core;
    double exposed_ns =
        static_cast<double>(exposed) * exposed_per_access / threads;
    if (out_of_cache) exposed_ns = std::max(exposed_ns, bw_floor_ns(exposed));
    if (env.DataEncrypted()) {
      exposed_ns /= machine_.RandomReadRelPerfSgx(p.rand_read_working_set);
    }
    if (env.InEnclave() && exposed > 0 && !p.rand_reads_dependent &&
        !p.software_mlp && out_of_cache) {
      // Enclave mode's restricted reordering keeps fewer independent
      // misses in flight unless the loop groups them in software.
      exposed_ns *= kEnclaveMlpLossFactor;
    }

    // Hidden reads dodge the SGX latency inflation and the enclave MLP
    // loss: a prefetched line's MEE decryption overlaps with the
    // pipeline's other in-flight probes, which is why batching recovers
    // in-enclave probe performance. The bandwidth floor still binds.
    double hidden_ns = static_cast<double>(hidden) * lat /
                       std::max(1.0, cal.prefetch_mlp) / threads;
    if (out_of_cache) hidden_ns = std::max(hidden_ns, bw_floor_ns(hidden));

    out.rand_read_ns = exposed_ns + hidden_ns;
  }

  // --- Random writes. ---------------------------------------------------
  if (p.rand_writes > 0) {
    double cost =
        machine_.RandomWriteCostNs(p.rand_write_working_set, remote);
    double ns = static_cast<double>(p.rand_writes) * cost / threads;
    if (env.DataEncrypted()) {
      ns /= machine_.RandomWriteRelPerfSgx(p.rand_write_working_set);
    }
    if (env.InEnclave() && !p.software_mlp &&
        p.rand_write_working_set > cal.l3_bytes) {
      ns *= kEnclaveMlpLossFactor;
    }
    out.rand_write_ns = ns;
  }

  // --- UPI encryption on remote traffic (Fig. 16). ----------------------
  if (remote && env.InEnclave()) {
    double f = 1.0 / machine_.UpiCryptoRelPerf(threads);
    out.seq_read_ns *= f;
    out.seq_write_ns *= f;
    out.rand_read_ns *= f;
    out.rand_write_ns *= f;
  }

  return out;
}

double CostModel::SlowdownFactor(const AccessProfile& profile,
                                 const ExecutionEnv& env) const {
  ExecutionEnv base = env;
  base.setting = ExecutionSetting::kPlainCpu;
  base.data_remote = false;
  double base_ns = EstimateNanos(profile, base);
  if (base_ns <= 0) return 1.0;
  return EstimateNanos(profile, env) / base_ns;
}

double MaterializationTrafficNs(const CostModel& model, uint64_t bytes,
                                const ExecutionEnv& env) {
  AccessProfile p;
  p.seq_write_bytes = bytes;
  p.seq_read_bytes = bytes;
  return model.EstimateNanos(p, env);
}

}  // namespace sgxb::perf
