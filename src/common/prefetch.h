// Portable software-prefetch wrappers.
//
// The paper's central micro-architectural finding is that SGXv2 penalizes
// random memory access far more than sequential access (Figs. 4-5): a PHT
// probe or a pointer chase pays the full memory-encryption latency per
// miss, while scans run near-native. Software prefetching is the standard
// way to hide exactly that latency — issue the load for probe i+k's bucket
// while resolving probe i — and it works *inside* enclaves because
// PREFETCHT0 is not restricted by enclave mode the way dynamic reordering
// is (Section 4.2). These wrappers compile to plain __builtin_prefetch on
// GCC/Clang and to nothing on compilers without it, so probe pipelines can
// use them unconditionally.

#ifndef SGXB_COMMON_PREFETCH_H_
#define SGXB_COMMON_PREFETCH_H_

#include <cstddef>

#include "common/types.h"

namespace sgxb {

#if defined(__GNUC__) || defined(__clang__)
#define SGXB_HAVE_BUILTIN_PREFETCH 1
#else
#define SGXB_HAVE_BUILTIN_PREFETCH 0
#endif

/// \brief Hints that `addr` will be read soon. Safe on any address,
/// including null or unmapped (prefetch never faults).
inline void PrefetchRead(const void* addr) {
#if SGXB_HAVE_BUILTIN_PREFETCH
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// \brief Hints that `addr` will be written soon (RFO prefetch).
inline void PrefetchWrite(const void* addr) {
#if SGXB_HAVE_BUILTIN_PREFETCH
  __builtin_prefetch(const_cast<void*>(addr), /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// \brief Prefetches `lines` consecutive cache lines starting at `addr`.
/// Structures larger than one line (B-tree key arrays, bucket pairs) need
/// their first few lines resident before a binary search can start.
inline void PrefetchReadSpan(const void* addr, size_t lines) {
  const char* p = static_cast<const char*>(addr);
  for (size_t i = 0; i < lines; ++i) {
    PrefetchRead(p + i * kCacheLineSize);
  }
}

}  // namespace sgxb

#endif  // SGXB_COMMON_PREFETCH_H_
