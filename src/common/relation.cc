#include "common/relation.h"

namespace sgxb {

Result<Relation> Relation::Allocate(size_t num_tuples, MemoryRegion region,
                                    int numa_node) {
  auto buf =
      AlignedBuffer::Allocate(num_tuples * sizeof(Tuple), region, numa_node);
  if (!buf.ok()) return buf.status();
  Relation r;
  r.buffer_ = std::move(buf).value();
  r.num_tuples_ = num_tuples;
  return r;
}

}  // namespace sgxb
