// Status / Result error handling, in the style of RocksDB and Arrow.
//
// All fallible operations in this library return a Status (or a Result<T>
// when they also produce a value) instead of throwing exceptions. This keeps
// control flow explicit in performance-critical query-processing code and
// matches the conventions of the database C++ ecosystem.

#ifndef SGXB_COMMON_STATUS_H_
#define SGXB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sgxb {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotSupported,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
};

/// \brief Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value of type T, or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

// Propagates a non-OK status to the caller.
#define SGXB_RETURN_NOT_OK(expr)           \
  do {                                     \
    ::sgxb::Status _st = (expr);           \
    if (!_st.ok()) return _st;             \
  } while (0)

// Assigns the value of a Result expression or propagates its error.
#define SGXB_ASSIGN_OR_RETURN(lhs, expr)     \
  auto SGXB_CONCAT_(_res, __LINE__) = (expr);  \
  if (!SGXB_CONCAT_(_res, __LINE__).ok())      \
    return SGXB_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(SGXB_CONCAT_(_res, __LINE__)).value()

#define SGXB_CONCAT_INNER_(a, b) a##b
#define SGXB_CONCAT_(a, b) SGXB_CONCAT_INNER_(a, b)

}  // namespace sgxb

#endif  // SGXB_COMMON_STATUS_H_
