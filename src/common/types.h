// Core row and relation types shared by all join and scan operators.
//
// The paper's join inputs are rows of a 32-bit key (join column) and a
// 32-bit payload (Section 4, "Join data"); an entire row is 8 bytes, so
// "100 MB table" means 13.1 M rows. Relation is the owning container for
// such rows, with cache-line-aligned storage so SIMD kernels can use
// aligned loads.

#ifndef SGXB_COMMON_TYPES_H_
#define SGXB_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace sgxb {

/// \brief Cache line size assumed throughout the library (x86).
inline constexpr size_t kCacheLineSize = 64;

/// \brief One join input row: 32-bit key plus 32-bit payload (8 bytes).
struct Tuple {
  uint32_t key;
  uint32_t payload;
};
static_assert(sizeof(Tuple) == 8, "Tuple must be 8 bytes like the paper's");

/// \brief One materialized join output row: both payloads plus the key.
struct JoinOutputTuple {
  uint32_t key;
  uint32_t build_payload;
  uint32_t probe_payload;
};

/// \brief Where a buffer lives in the (simulated) SGX memory map.
enum class MemoryRegion {
  /// Ordinary, unprotected memory ("Plain CPU" / "SGX Data outside Enclave").
  kUntrusted = 0,
  /// Simulated Enclave Page Cache memory ("SGX Data in Enclave").
  kEnclave = 1,
};

const char* MemoryRegionToString(MemoryRegion region);

/// \brief Execution settings studied by the paper (Section 3).
enum class ExecutionSetting {
  /// Native execution, data in untrusted memory; the no-security baseline.
  kPlainCpu = 0,
  /// Enclave code, inputs/intermediates/outputs in the EPC.
  kSgxDataInEnclave = 1,
  /// Enclave code, data in untrusted memory; isolates code-execution
  /// effects from memory encryption.
  kSgxDataOutsideEnclave = 2,
};

const char* ExecutionSettingToString(ExecutionSetting setting);

/// \brief Kernel flavour: the paper's Listing 1 style vs the Listing 2
/// manual unroll-and-reorder optimization (Section 4.2).
enum class KernelFlavor {
  /// Straightforward loop (Listing 1).
  kReference = 0,
  /// Manually unrolled 8x with grouped index computation (Listing 2).
  kUnrolledReordered = 1,
};

const char* KernelFlavorToString(KernelFlavor flavor);

/// \brief Converts a byte count into a whole number of 8-byte tuples.
inline constexpr size_t BytesToTuples(size_t bytes) {
  return bytes / sizeof(Tuple);
}

inline constexpr size_t operator""_KiB(unsigned long long v) {
  return static_cast<size_t>(v) << 10;
}
inline constexpr size_t operator""_MiB(unsigned long long v) {
  return static_cast<size_t>(v) << 20;
}
inline constexpr size_t operator""_GiB(unsigned long long v) {
  return static_cast<size_t>(v) << 30;
}

}  // namespace sgxb

#endif  // SGXB_COMMON_TYPES_H_
