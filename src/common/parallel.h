// Fork-join and morsel-driven helpers for multi-threaded operators.
//
// The paper pins worker threads to physical cores before entering the
// enclave (Section 3). We reproduce the structure on top of a persistent,
// placement-aware thread pool (src/exec/executor.h): ParallelRun dispatches
// one task per worker, runs `fn(tid)` on each, and waits; ParallelFor
// splits an index range into morsels scheduled over per-lane work-stealing
// deques. Workers are created once for the process and pinned at birth, so
// repeated small dispatches (every Repeat iteration of every benchmark) do
// not pay thread creation, and a worker that throws or fails surfaces as a
// Status instead of terminating the process. On hosts with fewer cores
// than workers, pinning degrades gracefully.

#ifndef SGXB_COMMON_PARALLEL_H_
#define SGXB_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace sgxb {

/// \brief How worker threads map to (simulated) NUMA nodes; consumed by the
/// executor, which publishes the node to task bodies via CurrentNumaNode(),
/// and by real pinning when the host has enough cores.
struct ThreadPlacement {
  /// Simulated NUMA node for each worker (empty = all on node 0).
  std::function<int(int tid)> node_of_thread;
  /// Pin to physical cores when possible (ignored if host is too small).
  /// Pool workers are always pinned at birth; this flag only affects the
  /// spawn fallback paths (nested gangs, SGXBENCH_EXECUTOR=spawn).
  bool pin_threads = false;
};

/// \brief Runs fn(tid) for tid in [0, num_threads) concurrently on pool
/// workers and waits for all of them. num_threads == 1 runs inline. An
/// exception escaping fn is captured and returned as an Internal status
/// (first failing tid wins) instead of calling std::terminate.
Status ParallelRun(int num_threads, const std::function<void(int)>& fn,
                   const ThreadPlacement& placement = {});

/// \brief Splits [0, total) into `parts` contiguous ranges and returns the
/// [begin, end) range of part `index`.
struct Range {
  size_t begin;
  size_t end;
  size_t size() const { return end - begin; }
};
inline Range SplitRange(size_t total, int parts, int index) {
  size_t base = total / parts;
  size_t rem = total % parts;
  size_t begin = static_cast<size_t>(index) * base +
                 (static_cast<size_t>(index) < rem ? index : rem);
  size_t len = base + (static_cast<size_t>(index) < rem ? 1 : 0);
  return Range{begin, begin + len};
}

/// \brief Tuning knobs for ParallelFor.
struct ParallelForOptions {
  /// Lanes (parallelism). 0 = one lane per logical core. The effective
  /// lane count never exceeds the morsel count.
  int num_threads = 0;
  ThreadPlacement placement;
  /// Optional per-lane decorator: runs once on each lane, wrapping that
  /// lane's whole morsel loop, and must invoke `run` exactly once. This is
  /// where operators open their per-thread ECall scope so enclave entry is
  /// charged once per lane (as on hardware), not once per morsel:
  ///
  ///   opts.worker_scope = [&](int, const std::function<void()>& run) {
  ///     sgx::ScopedEcall ecall;
  ///     run();
  ///   };
  std::function<void(int tid, const std::function<void()>& run)> worker_scope;
};

/// \brief Morsel-driven parallel loop: splits [0, total) into grain-sized
/// morsels and runs body(range, lane) for each, scheduling morsels over
/// per-lane work-stealing deques so skewed morsel costs re-balance. Ranges
/// partition [0, total) exactly; each morsel runs exactly once. Like
/// ParallelRun, failures surface as the returned Status.
Status ParallelFor(size_t total, size_t grain,
                   const std::function<void(Range, int)>& body,
                   const ParallelForOptions& options = {});

/// \brief Simulated NUMA node of the current task (from
/// ThreadPlacement::node_of_thread), or 0 outside a parallel task.
int CurrentNumaNode();

}  // namespace sgxb

#endif  // SGXB_COMMON_PARALLEL_H_
