// Fork-join helpers for multi-threaded operators.
//
// The paper pins worker threads to physical cores before entering the
// enclave (Section 3). We reproduce the structure: ParallelRun launches one
// thread per worker, optionally pinned, runs `fn(tid)` on each, and joins.
// On hosts with fewer cores than workers, pinning degrades gracefully.

#ifndef SGXB_COMMON_PARALLEL_H_
#define SGXB_COMMON_PARALLEL_H_

#include <functional>

#include "common/status.h"

namespace sgxb {

/// \brief How worker threads map to (simulated) NUMA nodes; consumed by the
/// NUMA cost model, and by real pinning when the host has enough cores.
struct ThreadPlacement {
  /// Simulated NUMA node for each worker (empty = all on node 0).
  std::function<int(int tid)> node_of_thread;
  /// Pin to physical cores when possible (ignored if host is too small).
  bool pin_threads = false;
};

/// \brief Runs fn(tid) for tid in [0, num_threads) on dedicated threads and
/// waits for all of them. num_threads == 1 runs inline.
Status ParallelRun(int num_threads, const std::function<void(int)>& fn,
                   const ThreadPlacement& placement = {});

/// \brief Splits [0, total) into `parts` contiguous ranges and returns the
/// [begin, end) range of part `index`.
struct Range {
  size_t begin;
  size_t end;
  size_t size() const { return end - begin; }
};
inline Range SplitRange(size_t total, int parts, int index) {
  size_t base = total / parts;
  size_t rem = total % parts;
  size_t begin = static_cast<size_t>(index) * base +
                 (static_cast<size_t>(index) < rem ? index : rem);
  size_t len = base + (static_cast<size_t>(index) < rem ? 1 : 0);
  return Range{begin, begin + len};
}

}  // namespace sgxb

#endif  // SGXB_COMMON_PARALLEL_H_
