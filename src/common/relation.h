// Owning containers for join inputs (key/payload rows) and scan inputs
// (single typed columns).

#ifndef SGXB_COMMON_RELATION_H_
#define SGXB_COMMON_RELATION_H_

#include <cstddef>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"

namespace sgxb {

/// \brief An owning table of 8-byte Tuples, aligned and region-tagged.
class Relation {
 public:
  Relation() = default;

  /// \brief Allocates an uninitialized relation of `num_tuples` rows.
  static Result<Relation> Allocate(size_t num_tuples,
                                   MemoryRegion region,
                                   int numa_node = 0);

  /// \brief Allocates from a mem::MemoryResource-like object — duck-typed
  /// (`resource->Allocate(bytes)` returning Result<AlignedBuffer>) so
  /// common/ stays below mem/ in the layering.
  template <typename ResourceT>
  static Result<Relation> AllocateFrom(ResourceT* resource,
                                       size_t num_tuples) {
    auto buf = resource->Allocate(num_tuples * sizeof(Tuple));
    if (!buf.ok()) return buf.status();
    Relation r;
    r.buffer_ = std::move(buf).value();
    r.num_tuples_ = num_tuples;
    return r;
  }

  Tuple* tuples() { return buffer_.As<Tuple>(); }
  const Tuple* tuples() const { return buffer_.As<Tuple>(); }
  size_t num_tuples() const { return num_tuples_; }
  size_t size_bytes() const { return num_tuples_ * sizeof(Tuple); }
  bool empty() const { return num_tuples_ == 0; }
  MemoryRegion region() const { return buffer_.region(); }
  int numa_node() const { return buffer_.numa_node(); }

  Tuple& operator[](size_t i) { return tuples()[i]; }
  const Tuple& operator[](size_t i) const { return tuples()[i]; }

 private:
  AlignedBuffer buffer_;
  size_t num_tuples_ = 0;
};

/// \brief An owning, typed column for scan benchmarks (e.g. uint8_t values
/// as in the paper's SIMD scan, Section 5).
template <typename T>
class Column {
 public:
  Column() = default;

  static Result<Column> Allocate(size_t num_values, MemoryRegion region,
                                 int numa_node = 0) {
    auto buf = AlignedBuffer::Allocate(num_values * sizeof(T), region,
                                       numa_node);
    if (!buf.ok()) return buf.status();
    Column c;
    c.buffer_ = std::move(buf).value();
    c.num_values_ = num_values;
    return c;
  }

  /// \brief Duck-typed resource allocation (see Relation::AllocateFrom).
  template <typename ResourceT>
  static Result<Column> AllocateFrom(ResourceT* resource,
                                     size_t num_values) {
    auto buf = resource->Allocate(num_values * sizeof(T));
    if (!buf.ok()) return buf.status();
    Column c;
    c.buffer_ = std::move(buf).value();
    c.num_values_ = num_values;
    return c;
  }

  T* data() { return buffer_.As<T>(); }
  const T* data() const { return buffer_.As<T>(); }
  size_t num_values() const { return num_values_; }
  size_t size_bytes() const { return num_values_ * sizeof(T); }
  MemoryRegion region() const { return buffer_.region(); }
  int numa_node() const { return buffer_.numa_node(); }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

 private:
  AlignedBuffer buffer_;
  size_t num_values_ = 0;
};

}  // namespace sgxb

#endif  // SGXB_COMMON_RELATION_H_
