#include "common/env.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace sgxb {

namespace internal {

namespace {
std::mutex g_warned_mu;
std::set<std::string>& WarnedNames() {
  static auto* warned = new std::set<std::string>();
  return *warned;
}
std::atomic<uint64_t> g_warnings{0};
}  // namespace

void WarnOnce(const char* name, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(g_warned_mu);
    if (!WarnedNames().insert(name).second) return;
    // Count under the same lock as the insert: a reader that observes the
    // count also observes the matching set membership, and two threads
    // racing on different knobs cannot make EnvWarningCount() lag the set
    // (the staleness TSan flags when the count is bumped outside).
    g_warnings.fetch_add(1, std::memory_order_relaxed);
  }
  std::fprintf(stderr, "[sgxbench] warning: %s: %s (using default)\n", name,
               message.c_str());
}

uint64_t EnvWarningCount() {
  return g_warnings.load(std::memory_order_relaxed);
}

}  // namespace internal

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::optional<std::string> EnvString(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

int64_t EnvInt(const char* name, int64_t fallback, int64_t lo, int64_t hi) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    internal::WarnOnce(name, "expected an integer, got \"" + std::string(v) +
                                 "\"");
    return fallback;
  }
  if (parsed < lo || parsed > hi) {
    internal::WarnOnce(name, "value " + std::string(v) + " outside [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
    return fallback;
  }
  return parsed;
}

uint64_t EnvUint(const char* name, uint64_t fallback, uint64_t lo,
                 uint64_t hi) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || v[0] == '-') {
    internal::WarnOnce(name, "expected a non-negative integer, got \"" +
                                 std::string(v) + "\"");
    return fallback;
  }
  if (parsed < lo || parsed > hi) {
    internal::WarnOnce(name, "value " + std::string(v) + " outside [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
    return fallback;
  }
  return parsed;
}

double EnvDouble(const char* name, double fallback, double lo, double hi) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    internal::WarnOnce(name,
                       "expected a number, got \"" + std::string(v) + "\"");
    return fallback;
  }
  if (parsed < lo || parsed > hi) {
    internal::WarnOnce(name, "value " + std::string(v) + " outside [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
    return fallback;
  }
  return parsed;
}

bool EnvBool(const char* name, bool fallback) {
  return EnvBoolOpt(name).value_or(fallback);
}

std::optional<bool> EnvBoolOpt(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  const std::string s = Lower(v);
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no" || s.empty()) {
    return false;
  }
  internal::WarnOnce(name, "expected a boolean (0/1/true/false/on/off), "
                           "got \"" + std::string(v) + "\"");
  return std::nullopt;
}

}  // namespace sgxb
