// Cache-line-aligned, region-tagged memory buffers.
//
// All operator inputs, hash tables, and outputs are allocated through
// AlignedBuffer so that (a) SIMD kernels can rely on 64-byte alignment and
// (b) each buffer carries the MemoryRegion and NUMA node it was (logically)
// placed in, which the cost model uses to charge SGX/NUMA overheads.
//
// Ownership comes in three flavours:
//  - Allocate/AllocateZeroed: the buffer owns plain heap memory.
//  - FromResource: the buffer owns memory handed over by an allocator
//    (src/mem/, sgx::Enclave) and calls the given release function on
//    destruction, so accounting (enclave heap charges, pool reuse) settles
//    automatically when the last handle dies.
//  - View: a non-owning window over memory owned elsewhere (e.g. an Arena
//    carve-out); destruction is a no-op and the bytes are not counted in
//    the region totals a second time.

#ifndef SGXB_COMMON_ALIGNED_BUFFER_H_
#define SGXB_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/types.h"

namespace sgxb {

/// \brief Called exactly once when an owning buffer releases its memory.
/// `ctx` is the creator-supplied context (e.g. the Enclave* to credit).
using BufferReleaseFn = void (*)(void* ctx, void* data, size_t bytes);

/// \brief An owning, cache-line-aligned byte buffer tagged with its
/// (simulated) memory placement.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  /// \brief Allocates `bytes` bytes aligned to `alignment` (a power of two,
  /// at least kCacheLineSize). The memory is NOT zero-initialized.
  static Result<AlignedBuffer> Allocate(size_t bytes,
                                        MemoryRegion region,
                                        int numa_node = 0,
                                        size_t alignment = kCacheLineSize);

  /// \brief Allocates and zero-fills.
  static Result<AlignedBuffer> AllocateZeroed(size_t bytes,
                                              MemoryRegion region,
                                              int numa_node = 0,
                                              size_t alignment =
                                                  kCacheLineSize);

  /// \brief Wraps memory owned by an allocator. `release(ctx, data, bytes)`
  /// runs exactly once when the buffer (or its final move target) is
  /// destroyed or Reset. The bytes are counted in the region totals for
  /// the buffer's lifetime. `release` must not be null (use View for
  /// non-owning windows).
  static AlignedBuffer FromResource(void* data, size_t bytes,
                                    MemoryRegion region, int numa_node,
                                    BufferReleaseFn release, void* ctx);

  /// \brief A non-owning window over memory owned elsewhere: destruction
  /// releases nothing and the bytes are not added to the region totals
  /// (the owner already counted them).
  static AlignedBuffer View(void* data, size_t bytes, MemoryRegion region,
                            int numa_node = 0);

  void* data() { return data_; }
  const void* data() const { return data_; }
  template <typename T>
  T* As() {
    return static_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return static_cast<const T*>(data_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  MemoryRegion region() const { return region_; }
  int numa_node() const { return numa_node_; }
  /// \brief True if destroying this buffer frees/credits the memory.
  bool owning() const { return data_ != nullptr && release_ != nullptr; }

  /// \brief Releases the memory (for owning buffers) and resets to the
  /// empty state.
  void Reset();

 private:
  AlignedBuffer(void* data, size_t size, MemoryRegion region, int numa_node,
                BufferReleaseFn release, void* release_ctx)
      : data_(data),
        size_(size),
        region_(region),
        numa_node_(numa_node),
        release_(release),
        release_ctx_(release_ctx) {}

  void* data_ = nullptr;
  size_t size_ = 0;
  MemoryRegion region_ = MemoryRegion::kUntrusted;
  int numa_node_ = 0;
  BufferReleaseFn release_ = nullptr;
  void* release_ctx_ = nullptr;
};

/// \brief Running total of bytes currently allocated per memory region;
/// used by tests and by the enclave EPC accounting.
struct RegionUsage {
  size_t untrusted_bytes;
  size_t enclave_bytes;
};
RegionUsage GetRegionUsage();

// --- Trusted-allocation bypass accounting --------------------------------
//
// Direct AlignedBuffer::Allocate(kEnclave) calls tag bytes as trusted
// without charging any sgx::Enclave heap — historically how operator code
// leaked allocations past the EPC/EDMM accounting. The mem/ resources wrap
// every sanctioned trusted allocation in a ScopedTrustedAllocSanction;
// anything else bumps the bypass counter, and strict mode turns a bypass
// into a debug assertion so the offending call site is found.

/// \brief Marks allocations on this thread as routed through an
/// enclave-aware resource (nestable).
class ScopedTrustedAllocSanction {
 public:
  ScopedTrustedAllocSanction();
  ~ScopedTrustedAllocSanction();
  ScopedTrustedAllocSanction(const ScopedTrustedAllocSanction&) = delete;
  ScopedTrustedAllocSanction& operator=(const ScopedTrustedAllocSanction&) =
      delete;
};

/// \brief Process-wide count of kEnclave allocations made outside any
/// sanction scope since start-up.
uint64_t TrustedBypassAllocCount();

/// \brief When strict, a bypassing trusted allocation asserts in debug
/// builds (release builds only count). Returns the previous value.
bool SetTrustedBypassStrict(bool strict);

}  // namespace sgxb

#endif  // SGXB_COMMON_ALIGNED_BUFFER_H_
