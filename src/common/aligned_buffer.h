// Cache-line-aligned, region-tagged memory buffers.
//
// All operator inputs, hash tables, and outputs are allocated through
// AlignedBuffer so that (a) SIMD kernels can rely on 64-byte alignment and
// (b) each buffer carries the MemoryRegion and NUMA node it was (logically)
// placed in, which the cost model uses to charge SGX/NUMA overheads.

#ifndef SGXB_COMMON_ALIGNED_BUFFER_H_
#define SGXB_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/types.h"

namespace sgxb {

/// \brief An owning, cache-line-aligned byte buffer tagged with its
/// (simulated) memory placement.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  /// \brief Allocates `bytes` bytes aligned to `alignment` (a power of two,
  /// at least kCacheLineSize). The memory is NOT zero-initialized.
  static Result<AlignedBuffer> Allocate(size_t bytes,
                                        MemoryRegion region,
                                        int numa_node = 0,
                                        size_t alignment = kCacheLineSize);

  /// \brief Allocates and zero-fills.
  static Result<AlignedBuffer> AllocateZeroed(size_t bytes,
                                              MemoryRegion region,
                                              int numa_node = 0,
                                              size_t alignment =
                                                  kCacheLineSize);

  void* data() { return data_; }
  const void* data() const { return data_; }
  template <typename T>
  T* As() {
    return static_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return static_cast<const T*>(data_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  MemoryRegion region() const { return region_; }
  int numa_node() const { return numa_node_; }

  /// \brief Releases the memory and resets to the empty state.
  void Reset();

 private:
  AlignedBuffer(void* data, size_t size, MemoryRegion region, int numa_node)
      : data_(data), size_(size), region_(region), numa_node_(numa_node) {}

  void* data_ = nullptr;
  size_t size_ = 0;
  MemoryRegion region_ = MemoryRegion::kUntrusted;
  int numa_node_ = 0;
};

/// \brief Running total of bytes currently allocated per memory region;
/// used by tests and by the enclave EPC accounting.
struct RegionUsage {
  size_t untrusted_bytes;
  size_t enclave_bytes;
};
RegionUsage GetRegionUsage();

}  // namespace sgxb

#endif  // SGXB_COMMON_ALIGNED_BUFFER_H_
