// Minimal leveled logging to stderr.
//
// Kept deliberately tiny: benchmarks must not have logging in hot paths,
// so this is only used for setup/teardown diagnostics and fatal errors.

#ifndef SGXB_COMMON_LOGGING_H_
#define SGXB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sgxb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global minimum level; messages below it are dropped. Defaults to
/// kInfo, override with the SGXBENCH_LOG_LEVEL env var (0-3).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define SGXB_LOG(level)                                                  \
  if (::sgxb::LogLevel::level < ::sgxb::GetLogLevel()) {                 \
  } else                                                                 \
    ::sgxb::internal::LogMessage(::sgxb::LogLevel::level, __FILE__,      \
                                 __LINE__)                               \
        .stream()

#define SGXB_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else                                                                   \
    ::sgxb::internal::LogMessage(::sgxb::LogLevel::kError, __FILE__,       \
                                 __LINE__)                                 \
        .stream()                                                          \
        << "Check failed: " #cond " "

}  // namespace sgxb

#endif  // SGXB_COMMON_LOGGING_H_
