// Reusable thread barrier.
//
// The multi-threaded join implementations follow the TEEBench/radix-join
// structure: every worker runs the whole join pipeline and synchronizes at
// phase boundaries with a barrier (the original code uses
// pthread_barrier_t). We use a blocking (mutex + condvar) barrier rather
// than a spin barrier so the suite also behaves well on oversubscribed
// machines, e.g. CI boxes with fewer cores than worker threads.

#ifndef SGXB_COMMON_BARRIER_H_
#define SGXB_COMMON_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace sgxb {

class Barrier {
 public:
  explicit Barrier(int num_threads) : threshold_(num_threads) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// \brief Blocks until `num_threads` threads have arrived. Returns true
  /// for exactly one thread per generation (the "serial" thread), which can
  /// be used to run a single-threaded epilogue, mirroring
  /// PTHREAD_BARRIER_SERIAL_THREAD.
  bool Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t gen = generation_;
    if (++count_ == threshold_) {
      ++generation_;
      count_ = 0;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return false;
  }

  /// \brief Like Wait(), but the last-arriving thread runs `on_release`
  /// while all others are still blocked. Useful for single-threaded steps
  /// (e.g. prefix sums) between parallel phases.
  void WaitThen(const std::function<void()>& on_release) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t gen = generation_;
    if (++count_ == threshold_) {
      on_release();
      ++generation_;
      count_ = 0;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int threshold_;
  int count_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace sgxb

#endif  // SGXB_COMMON_BARRIER_H_
