#include "common/types.h"

namespace sgxb {

const char* MemoryRegionToString(MemoryRegion region) {
  switch (region) {
    case MemoryRegion::kUntrusted:
      return "untrusted";
    case MemoryRegion::kEnclave:
      return "enclave";
  }
  return "unknown";
}

const char* ExecutionSettingToString(ExecutionSetting setting) {
  switch (setting) {
    case ExecutionSetting::kPlainCpu:
      return "Plain CPU";
    case ExecutionSetting::kSgxDataInEnclave:
      return "SGX Data in Enclave";
    case ExecutionSetting::kSgxDataOutsideEnclave:
      return "SGX Data outside Enclave";
  }
  return "unknown";
}

const char* KernelFlavorToString(KernelFlavor flavor) {
  switch (flavor) {
    case KernelFlavor::kReference:
      return "reference";
    case KernelFlavor::kUnrolledReordered:
      return "unrolled+reordered";
  }
  return "unknown";
}

}  // namespace sgxb
