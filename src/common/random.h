// Fast pseudo-random number generators used by data generation and the
// random-access micro-benchmarks.
//
// The random-write benchmark in the paper determines write positions with a
// linear congruential generator (Section 4.1); Lcg64 reproduces that. For
// general data generation we use xoshiro256**, which is much faster than
// std::mt19937_64 and has no measurable bias for our purposes.

#ifndef SGXB_COMMON_RANDOM_H_
#define SGXB_COMMON_RANDOM_H_

#include <cstdint>

namespace sgxb {

/// \brief 64-bit linear congruential generator (MMIX constants). Used to
/// pick random write positions exactly like the paper's micro-benchmark.
class Lcg64 {
 public:
  explicit Lcg64(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_;
  }

  /// \brief Uniform value in [0, bound), bound > 0. Uses the high bits,
  /// which have the longest period in an LCG.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** by Blackman & Vigna; the workhorse generator for
/// table data.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 42);

  uint64_t Next();

  /// \brief Uniform value in [0, bound), bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed values over [0, n) with skew parameter theta
/// (Gray et al.'s method, as popularized by YCSB). theta = 0 is uniform;
/// theta -> 1 concentrates mass on few hot keys. Used for the skew
/// ablation: the paper evaluates uniform keys only, while TEEBench-style
/// suites also stress skewed foreign keys.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 7);

  /// \brief Next value in [0, n); value 0 is the hottest key.
  uint64_t Next();

  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xoshiro256 rng_;
};

/// \brief SplitMix64; used to seed other generators from a single value.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace sgxb

#endif  // SGXB_COMMON_RANDOM_H_
