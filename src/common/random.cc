#include "common/random.h"

#include <cmath>

namespace sgxb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n < 1 ? 1 : n), theta_(theta), rng_(seed) {
  if (theta_ < 0) theta_ = 0;
  if (theta_ > 0.999) theta_ = 0.999;  // theta = 1 diverges
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  if (n_ == 1) return 0;
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v =
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t value = static_cast<uint64_t>(v);
  return value >= n_ ? n_ - 1 : value;
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

}  // namespace sgxb
