#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/env.h"

namespace sgxb {

namespace {

std::atomic<int> g_level{-1};

int InitLevelFromEnv() {
  return static_cast<int>(EnvInt("SGXBENCH_LOG_LEVEL",
                                 static_cast<int>(LogLevel::kInfo),
                                 /*lo=*/0, /*hi=*/3));
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg) {
  static std::mutex mu;
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace internal

}  // namespace sgxb
