// Timing utilities.
//
// The paper measures execution times with RDTSCP because it is the only
// high-precision method available both inside and outside an enclave
// (Section 3). We expose both a cycle timer (RDTSCP on x86) and a
// steady_clock-based wall timer, plus the measured TSC frequency so cycles
// can be converted to nanoseconds.

#ifndef SGXB_COMMON_TIMER_H_
#define SGXB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace sgxb {

/// \brief Reads the time-stamp counter with serialization semantics
/// (RDTSCP), as the paper's measurements do.
inline uint64_t ReadTsc() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// \brief Estimated TSC frequency in Hz (measured once at first use).
double TscFrequencyHz();

/// \brief Converts TSC cycles to nanoseconds using the measured frequency.
inline double CyclesToNanos(uint64_t cycles) {
  return static_cast<double>(cycles) * 1e9 / TscFrequencyHz();
}

/// \brief Wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// \brief Nanoseconds elapsed since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Cycle-count stopwatch built on RDTSCP.
class CycleTimer {
 public:
  CycleTimer() { Restart(); }
  void Restart() { start_ = ReadTsc(); }
  uint64_t ElapsedCycles() const { return ReadTsc() - start_; }
  double ElapsedNanos() const { return CyclesToNanos(ElapsedCycles()); }

 private:
  uint64_t start_;
};

/// \brief Busy-waits for approximately `cycles` TSC cycles. Used by the SGX
/// simulator to inject enclave-transition costs as real delays.
void SpinForCycles(uint64_t cycles);

}  // namespace sgxb

#endif  // SGXB_COMMON_TIMER_H_
