#include "common/aligned_buffer.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sgxb {

namespace {
std::atomic<size_t> g_untrusted_bytes{0};
std::atomic<size_t> g_enclave_bytes{0};

std::atomic<size_t>& CounterFor(MemoryRegion region) {
  return region == MemoryRegion::kEnclave ? g_enclave_bytes
                                          : g_untrusted_bytes;
}
}  // namespace

AlignedBuffer::~AlignedBuffer() { Reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      region_(other.region_),
      numa_node_(other.numa_node_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    region_ = other.region_;
    numa_node_ = other.numa_node_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<AlignedBuffer> AlignedBuffer::Allocate(size_t bytes,
                                              MemoryRegion region,
                                              int numa_node,
                                              size_t alignment) {
  if (alignment < kCacheLineSize || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 64");
  }
  if (bytes == 0) {
    return AlignedBuffer(nullptr, 0, region, numa_node);
  }
  // Round the size up to the alignment so that SIMD kernels may read a full
  // final vector without faulting.
  size_t padded = (bytes + alignment - 1) & ~(alignment - 1);
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) {
    return Status::OutOfMemory("aligned_alloc of " + std::to_string(padded) +
                               " bytes failed");
  }
  CounterFor(region).fetch_add(bytes, std::memory_order_relaxed);
  return AlignedBuffer(p, bytes, region, numa_node);
}

Result<AlignedBuffer> AlignedBuffer::AllocateZeroed(size_t bytes,
                                                    MemoryRegion region,
                                                    int numa_node,
                                                    size_t alignment) {
  auto r = Allocate(bytes, region, numa_node, alignment);
  if (r.ok() && r.value().data() != nullptr) {
    std::memset(r.value().data(), 0, bytes);
  }
  return r;
}

void AlignedBuffer::Reset() {
  if (data_ != nullptr) {
    CounterFor(region_).fetch_sub(size_, std::memory_order_relaxed);
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }
}

RegionUsage GetRegionUsage() {
  return RegionUsage{g_untrusted_bytes.load(std::memory_order_relaxed),
                     g_enclave_bytes.load(std::memory_order_relaxed)};
}

}  // namespace sgxb
