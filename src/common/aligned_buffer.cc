#include "common/aligned_buffer.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sgxb {

namespace {
std::atomic<size_t> g_untrusted_bytes{0};
std::atomic<size_t> g_enclave_bytes{0};
std::atomic<uint64_t> g_trusted_bypass_allocs{0};
std::atomic<bool> g_trusted_bypass_strict{false};
thread_local int t_sanction_depth = 0;

std::atomic<size_t>& CounterFor(MemoryRegion region) {
  return region == MemoryRegion::kEnclave ? g_enclave_bytes
                                          : g_untrusted_bytes;
}

// Release function for plain heap allocations (Allocate/AllocateZeroed).
void FreeRelease(void* /*ctx*/, void* data, size_t /*bytes*/) {
  std::free(data);
}
}  // namespace

AlignedBuffer::~AlignedBuffer() { Reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      region_(other.region_),
      numa_node_(other.numa_node_),
      release_(other.release_),
      release_ctx_(other.release_ctx_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.release_ = nullptr;
  other.release_ctx_ = nullptr;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    region_ = other.region_;
    numa_node_ = other.numa_node_;
    release_ = other.release_;
    release_ctx_ = other.release_ctx_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.release_ = nullptr;
    other.release_ctx_ = nullptr;
  }
  return *this;
}

Result<AlignedBuffer> AlignedBuffer::Allocate(size_t bytes,
                                              MemoryRegion region,
                                              int numa_node,
                                              size_t alignment) {
  if (alignment < kCacheLineSize || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 64");
  }
  if (region == MemoryRegion::kEnclave && t_sanction_depth == 0) {
    g_trusted_bypass_allocs.fetch_add(1, std::memory_order_relaxed);
    assert((!g_trusted_bypass_strict.load(std::memory_order_relaxed)) &&
           "trusted allocation bypassed the enclave-aware resources");
  }
  if (bytes == 0) {
    return AlignedBuffer(nullptr, 0, region, numa_node, nullptr, nullptr);
  }
  // Round the size up to the alignment so that SIMD kernels may read a full
  // final vector without faulting.
  size_t padded = (bytes + alignment - 1) & ~(alignment - 1);
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) {
    return Status::OutOfMemory("aligned_alloc of " + std::to_string(padded) +
                               " bytes failed");
  }
  CounterFor(region).fetch_add(bytes, std::memory_order_relaxed);
  return AlignedBuffer(p, bytes, region, numa_node, &FreeRelease, nullptr);
}

Result<AlignedBuffer> AlignedBuffer::AllocateZeroed(size_t bytes,
                                                    MemoryRegion region,
                                                    int numa_node,
                                                    size_t alignment) {
  auto r = Allocate(bytes, region, numa_node, alignment);
  if (r.ok() && r.value().data() != nullptr) {
    std::memset(r.value().data(), 0, bytes);
  }
  return r;
}

AlignedBuffer AlignedBuffer::FromResource(void* data, size_t bytes,
                                          MemoryRegion region,
                                          int numa_node,
                                          BufferReleaseFn release,
                                          void* ctx) {
  assert(release != nullptr && "FromResource requires a release function");
  if (data != nullptr) {
    CounterFor(region).fetch_add(bytes, std::memory_order_relaxed);
  }
  return AlignedBuffer(data, bytes, region, numa_node, release, ctx);
}

AlignedBuffer AlignedBuffer::View(void* data, size_t bytes,
                                  MemoryRegion region, int numa_node) {
  return AlignedBuffer(data, bytes, region, numa_node, nullptr, nullptr);
}

void AlignedBuffer::Reset() {
  if (data_ != nullptr) {
    if (release_ != nullptr) {
      CounterFor(region_).fetch_sub(size_, std::memory_order_relaxed);
      release_(release_ctx_, data_, size_);
    }
    data_ = nullptr;
    size_ = 0;
    release_ = nullptr;
    release_ctx_ = nullptr;
  } else {
    size_ = 0;
  }
}

RegionUsage GetRegionUsage() {
  return RegionUsage{g_untrusted_bytes.load(std::memory_order_relaxed),
                     g_enclave_bytes.load(std::memory_order_relaxed)};
}

ScopedTrustedAllocSanction::ScopedTrustedAllocSanction() {
  ++t_sanction_depth;
}

ScopedTrustedAllocSanction::~ScopedTrustedAllocSanction() {
  --t_sanction_depth;
}

uint64_t TrustedBypassAllocCount() {
  return g_trusted_bypass_allocs.load(std::memory_order_relaxed);
}

bool SetTrustedBypassStrict(bool strict) {
  return g_trusted_bypass_strict.exchange(strict,
                                          std::memory_order_relaxed);
}

}  // namespace sgxb
