// Typed environment-variable parsing for the SGXBENCH_* knob family.
//
// Every subsystem used to hand-roll its own std::getenv + strtoull parse,
// each with slightly different malformed-input behaviour (silently ignored,
// clamped, or accepted as garbage). These helpers centralize the contract:
// a knob either parses cleanly inside its valid range and is used, or the
// fallback applies and a warning is printed once per variable. Warnings go
// straight to stderr (not SGXB_LOG) because the logging level itself is an
// env knob — routing through the logger would recurse during its first
// initialization.

#ifndef SGXB_COMMON_ENV_H_
#define SGXB_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>

namespace sgxb {

/// \brief Raw lookup: the variable's value, or nullopt if unset. Never
/// warns — an unset knob is the normal case, not a user error.
std::optional<std::string> EnvString(const char* name);

/// \brief `name` parsed as a decimal integer in [lo, hi]. Unset -> the
/// fallback silently; set-but-malformed or out of range -> the fallback
/// with a one-time stderr warning naming the variable and its bounds.
int64_t EnvInt(const char* name, int64_t fallback,
               int64_t lo = INT64_MIN, int64_t hi = INT64_MAX);

/// \brief Unsigned variant (sizes, cycle counts).
uint64_t EnvUint(const char* name, uint64_t fallback,
                 uint64_t lo = 0, uint64_t hi = UINT64_MAX);

/// \brief Floating-point knob in [lo, hi] (calibration overrides).
double EnvDouble(const char* name, double fallback, double lo, double hi);

/// \brief Boolean knob: "1"/"true"/"on"/"yes" -> true, "0"/"false"/"off"/
/// "no" -> false (case-insensitive). Unset -> fallback; anything else ->
/// fallback with a one-time warning.
bool EnvBool(const char* name, bool fallback);

/// \brief Tri-state boolean knob: nullopt when unset OR malformed (with
/// the one-time warning), so a garbage value falls through to whatever
/// the caller's next precedence tier is instead of silently forcing one
/// branch. This is the form knob *resolvers* want; EnvBool stays for
/// call-sites with a fixed default.
std::optional<bool> EnvBoolOpt(const char* name);

/// \brief The one knob-precedence rule every layer must share:
/// explicit per-call config beats the environment beats the computed
/// fallback. tpch::ResolvedQueryConfig and the planner used to each
/// re-implement this with subtly different tie-breaking; route every
/// config-vs-env knob through here instead.
template <typename T>
T ResolveKnob(const std::optional<T>& config_value,
              const std::optional<T>& env_value, T fallback) {
  if (config_value.has_value()) return *config_value;
  if (env_value.has_value()) return *env_value;
  return fallback;
}

namespace internal {
/// \brief Emits the malformed-knob warning at most once per variable name
/// for the process lifetime (exposed for tests).
void WarnOnce(const char* name, const std::string& message);
/// \brief Number of warnings emitted so far (test hook).
uint64_t EnvWarningCount();
}  // namespace internal

}  // namespace sgxb

#endif  // SGXB_COMMON_ENV_H_
