#include "common/status.h"

namespace sgxb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace sgxb
