// Host CPU introspection: cache sizes, SIMD capabilities, core count.
//
// Used to (a) pick runtime-dispatched scan kernels, and (b) compare the
// host against the paper's reference machine (Table 1) in reports.

#ifndef SGXB_COMMON_CPU_INFO_H_
#define SGXB_COMMON_CPU_INFO_H_

#include <cstddef>
#include <string>

namespace sgxb {

/// \brief SIMD instruction-set levels the scan kernels can target.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* SimdLevelToString(SimdLevel level);

/// \brief Host CPU properties, detected once at startup.
struct CpuInfo {
  std::string model_name;
  int logical_cores;
  size_t l1d_bytes;
  size_t l2_bytes;
  size_t l3_bytes;
  SimdLevel max_simd;

  /// \brief Detected properties of the machine we are running on.
  static const CpuInfo& Host();
};

}  // namespace sgxb

#endif  // SGXB_COMMON_CPU_INFO_H_
