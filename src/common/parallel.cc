#include "common/parallel.h"

#include <pthread.h>

#include <thread>
#include <vector>

#include "common/cpu_info.h"

namespace sgxb {

namespace {

void MaybePin(std::thread& t, int core) {
  if (core >= CpuInfo::Host().logical_cores) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best effort: pinning failures (e.g. restricted cpusets) are not fatal.
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
}

}  // namespace

Status ParallelRun(int num_threads, const std::function<void(int)>& fn,
                   const ThreadPlacement& placement) {
  if (num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (num_threads == 1) {
    fn(0);
    return Status::OK();
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&fn, tid] { fn(tid); });
    if (placement.pin_threads) MaybePin(threads.back(), tid);
  }
  for (auto& t : threads) t.join();
  return Status::OK();
}

}  // namespace sgxb
