// Dense bit vector used as the output of predicate scans.
//
// The paper's SIMD scan stores one result bit per scanned value
// (Section 5); BitVector is that output buffer, with word-level access so
// AVX-512 kernels can write 64 comparison results with a single store.

#ifndef SGXB_COMMON_BITVECTOR_H_
#define SGXB_COMMON_BITVECTOR_H_

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace sgxb {

class BitVector {
 public:
  BitVector() = default;

  /// \brief Allocates a zeroed bit vector holding `num_bits` bits.
  static Result<BitVector> Allocate(size_t num_bits, MemoryRegion region,
                                    int numa_node = 0) {
    size_t words = (num_bits + 63) / 64;
    auto buf = AlignedBuffer::AllocateZeroed(words * sizeof(uint64_t),
                                             region, numa_node);
    if (!buf.ok()) return buf.status();
    BitVector bv;
    bv.buffer_ = std::move(buf).value();
    bv.num_bits_ = num_bits;
    return bv;
  }

  /// \brief Duck-typed resource allocation (see Relation::AllocateFrom):
  /// `resource->AllocateZeroed(bytes)` must return Result<AlignedBuffer>.
  template <typename ResourceT>
  static Result<BitVector> AllocateFrom(ResourceT* resource,
                                        size_t num_bits) {
    size_t words = (num_bits + 63) / 64;
    auto buf = resource->AllocateZeroed(words * sizeof(uint64_t));
    if (!buf.ok()) return buf.status();
    BitVector bv;
    bv.buffer_ = std::move(buf).value();
    bv.num_bits_ = num_bits;
    return bv;
  }

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return (num_bits_ + 63) / 64; }
  uint64_t* words() { return buffer_.As<uint64_t>(); }
  const uint64_t* words() const { return buffer_.As<uint64_t>(); }

  bool Get(size_t i) const {
    return (words()[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words()[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words()[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// \brief Number of set bits.
  uint64_t CountOnes() const {
    uint64_t n = 0;
    const uint64_t* w = words();
    for (size_t i = 0; i < num_words(); ++i) n += __builtin_popcountll(w[i]);
    return n;
  }

 private:
  AlignedBuffer buffer_;
  size_t num_bits_ = 0;
};

}  // namespace sgxb

#endif  // SGXB_COMMON_BITVECTOR_H_
