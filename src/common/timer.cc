#include "common/timer.h"

#include <mutex>
#include <thread>

namespace sgxb {

namespace {

double MeasureTscFrequency() {
  // Correlate TSC ticks with steady_clock over a short interval. 10 ms is
  // long enough for a stable estimate and short enough for startup.
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const uint64_t c0 = ReadTsc();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const uint64_t c1 = ReadTsc();
  const auto t1 = Clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  if (secs <= 0) return 1e9;
  return static_cast<double>(c1 - c0) / secs;
}

}  // namespace

double TscFrequencyHz() {
  static const double kFreq = MeasureTscFrequency();
  return kFreq;
}

void SpinForCycles(uint64_t cycles) {
  const uint64_t start = ReadTsc();
  while (ReadTsc() - start < cycles) {
#if defined(__x86_64__)
    _mm_pause();
#endif
  }
}

}  // namespace sgxb
