#include "common/cpu_info.h"

#include <fstream>
#include <sstream>
#include <thread>

#include "common/types.h"

namespace sgxb {

const char* SimdLevelToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "AVX2";
    case SimdLevel::kAvx512:
      return "AVX-512";
  }
  return "unknown";
}

namespace {

size_t ReadCacheSize(int index, size_t fallback) {
  std::ifstream f("/sys/devices/system/cpu/cpu0/cache/index" +
                  std::to_string(index) + "/size");
  if (!f.is_open()) return fallback;
  std::string s;
  f >> s;
  if (s.empty()) return fallback;
  size_t mult = 1;
  char suffix = s.back();
  if (suffix == 'K' || suffix == 'k') {
    mult = 1_KiB;
    s.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    mult = 1_MiB;
    s.pop_back();
  }
  try {
    return static_cast<size_t>(std::stoull(s)) * mult;
  } catch (...) {
    return fallback;
  }
}

std::string ReadModelName() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    auto pos = line.find("model name");
    if (pos != std::string::npos) {
      auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

SimdLevel DetectSimd() {
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

CpuInfo Detect() {
  CpuInfo info;
  info.model_name = ReadModelName();
  info.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cores <= 0) info.logical_cores = 1;
  // Sysfs cache indexes on x86: 0 = L1d, 1 = L1i, 2 = L2, 3 = L3.
  info.l1d_bytes = ReadCacheSize(0, 32_KiB);
  info.l2_bytes = ReadCacheSize(2, 1_MiB);
  info.l3_bytes = ReadCacheSize(3, 32_MiB);
  info.max_simd = DetectSimd();
  return info;
}

}  // namespace

const CpuInfo& CpuInfo::Host() {
  static const CpuInfo kInfo = Detect();
  return kInfo;
}

}  // namespace sgxb
