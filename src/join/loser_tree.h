// Loser tree for multi-way merging (Knuth TAOCP vol. 3; the structure the
// MWAY sort-merge join of Kim et al. uses to merge sorted runs).
//
// A loser tree over K runs answers "which run holds the smallest head?"
// in O(log K) comparisons per pop with excellent branch behaviour: after
// removing the winner, only the path from its leaf to the root is
// replayed. Compared to a binary heap it halves the comparisons per
// element and touches a contiguous K-entry array.

#ifndef SGXB_JOIN_LOSER_TREE_H_
#define SGXB_JOIN_LOSER_TREE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sgxb::join {

/// \brief Merges K sorted runs of Tuples by key. Usage:
///   LoserTree tree(cursors);
///   while (!tree.Empty()) out[k++] = tree.Pop();
class LoserTree {
 public:
  struct Cursor {
    const Tuple* pos;
    const Tuple* end;
  };

  explicit LoserTree(std::vector<Cursor> runs) : runs_(std::move(runs)) {
    // k_ = number of leaves, padded to a power of two for a complete
    // tree; empty runs participate as exhausted leaves.
    k_ = 1;
    while (k_ < runs_.size()) k_ <<= 1;
    runs_.resize(k_, Cursor{nullptr, nullptr});
    tree_.assign(k_, 0);
    remaining_ = 0;
    for (const Cursor& c : runs_) {
      remaining_ += static_cast<size_t>(c.end - c.pos);
    }
    Rebuild();
  }

  bool Empty() const { return remaining_ == 0; }
  size_t remaining() const { return remaining_; }

  /// \brief Removes and returns the tuple with the smallest key.
  Tuple Pop() {
    const size_t run = winner_;
    Tuple result = *runs_[run].pos++;
    --remaining_;
    Replay(run);
    return result;
  }

  /// \brief Key of the current minimum (valid unless Empty()).
  uint32_t MinKey() const { return runs_[winner_].pos->key; }

 private:
  static constexpr uint64_t kExhausted = ~uint64_t{0};

  // Sort key of a run's head; exhausted runs sort last.
  uint64_t KeyOf(size_t run) const {
    const Cursor& c = runs_[run];
    return c.pos == c.end ? kExhausted : c.pos->key;
  }

  // Rebuilds the whole tree (initialization): plays knockout rounds
  // bottom-up, storing losers at internal nodes and the winner aside.
  void Rebuild() {
    // Compute the winner of the subtree rooted at internal node `node`
    // and store losers along the way.
    winner_ = BuildSubtree(1);
  }

  size_t BuildSubtree(size_t node) {
    if (node >= k_) return node - k_;  // leaf index -> run index
    size_t left = BuildSubtree(2 * node);
    size_t right = BuildSubtree(2 * node + 1);
    if (KeyOf(left) <= KeyOf(right)) {
      tree_[node] = right;  // loser stays at the node
      return left;
    }
    tree_[node] = left;
    return right;
  }

  // After run `run` advanced, replay its leaf-to-root path.
  void Replay(size_t run) {
    size_t winner = run;
    for (size_t node = (run + k_) / 2; node >= 1; node /= 2) {
      if (KeyOf(tree_[node]) < KeyOf(winner)) {
        // The stored loser beats the incoming contender: swap.
        size_t tmp = winner;
        winner = tree_[node];
        tree_[node] = tmp;
      }
    }
    winner_ = winner;
  }

  std::vector<Cursor> runs_;
  std::vector<size_t> tree_;  // internal nodes store losers
  size_t k_ = 0;
  size_t winner_ = 0;
  size_t remaining_ = 0;
};

}  // namespace sgxb::join

#endif  // SGXB_JOIN_LOSER_TREE_H_
