// Radix Hash Optimized join (RHO) — Manegold/Balkesen-style radix join
// with two-phase parallel partitioning (Kim et al.) and a task-queue join
// phase.
//
// Both inputs are partitioned into cache-sized partitions by the least
// significant bits of the join key: pass 1 is a histogram + scatter over
// all threads with a global prefix sum; pass 2 re-partitions each pass-1
// partition task-by-task. The final partition pairs are joined with the
// in-cache bucket-chained hash join. The histogram/scatter/build loops
// come in the reference and unrolled+reordered flavours (Figures 6-8), and
// the task queue is pluggable (Figure 10).

#ifndef SGXB_JOIN_RHO_JOIN_H_
#define SGXB_JOIN_RHO_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs the RHO join of `build` and `probe`.
Result<JoinResult> RhoJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_RHO_JOIN_H_
