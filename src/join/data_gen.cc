#include "join/data_gen.h"

#include <unordered_map>

#include "common/random.h"

namespace sgxb::join {

Result<Relation> GenerateBuildRelation(size_t num_tuples,
                                       MemoryRegion region, uint64_t seed,
                                       int numa_node) {
  auto rel = Relation::Allocate(num_tuples, region, numa_node);
  if (!rel.ok()) return rel.status();
  Relation r = std::move(rel).value();
  Tuple* t = r.tuples();
  for (size_t i = 0; i < num_tuples; ++i) {
    t[i].key = static_cast<uint32_t>(i);
    t[i].payload = static_cast<uint32_t>(i);
  }
  // Fisher-Yates shuffle of the keys (payload keeps the original slot so
  // the provenance of each tuple stays testable).
  Xoshiro256 rng(seed);
  for (size_t i = num_tuples - 1; i > 0; --i) {
    size_t j = rng.NextBounded(i + 1);
    uint32_t tmp = t[i].key;
    t[i].key = t[j].key;
    t[j].key = tmp;
  }
  return r;
}

Result<Relation> GenerateProbeRelation(size_t num_tuples, size_t key_domain,
                                       MemoryRegion region, uint64_t seed,
                                       int numa_node) {
  if (key_domain == 0) {
    return Status::InvalidArgument("key_domain must be positive");
  }
  auto rel = Relation::Allocate(num_tuples, region, numa_node);
  if (!rel.ok()) return rel.status();
  Relation r = std::move(rel).value();
  Tuple* t = r.tuples();
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < num_tuples; ++i) {
    t[i].key = static_cast<uint32_t>(rng.NextBounded(key_domain));
    t[i].payload = static_cast<uint32_t>(i);
  }
  return r;
}

Result<Relation> GenerateSkewedProbeRelation(size_t num_tuples,
                                             size_t key_domain,
                                             double zipf_theta,
                                             MemoryRegion region,
                                             uint64_t seed,
                                             int numa_node) {
  if (key_domain == 0) {
    return Status::InvalidArgument("key_domain must be positive");
  }
  auto rel = Relation::Allocate(num_tuples, region, numa_node);
  if (!rel.ok()) return rel.status();
  Relation r = std::move(rel).value();
  Tuple* t = r.tuples();
  ZipfGenerator zipf(key_domain, zipf_theta, seed);
  // Scramble the Zipf rank into the key domain so hot keys are not
  // clustered at small values (which would bias radix partitioning).
  for (size_t i = 0; i < num_tuples; ++i) {
    uint64_t rank = zipf.Next();
    uint64_t scrambled = rank * 2654435761u % key_domain;
    t[i].key = static_cast<uint32_t>(scrambled);
    t[i].payload = static_cast<uint32_t>(i);
  }
  return r;
}

uint64_t ReferenceMatchCount(const Relation& build, const Relation& probe) {
  std::unordered_map<uint32_t, uint64_t> counts;
  counts.reserve(build.num_tuples() * 2);
  for (size_t i = 0; i < build.num_tuples(); ++i) {
    ++counts[build[i].key];
  }
  uint64_t matches = 0;
  for (size_t i = 0; i < probe.num_tuples(); ++i) {
    auto it = counts.find(probe[i].key);
    if (it != counts.end()) matches += it->second;
  }
  return matches;
}

}  // namespace sgxb::join
