// CrkJoin — the SGXv1-optimized cracking join of Maliszewski et al.
//
// CrkJoin was designed around SGXv1's two bottlenecks, EPC paging and
// random memory access: it radix-partitions both inputs *in place*, one
// key bit at a time, by moving two pointers from the ends of the table
// toward the middle and swapping out-of-order tuples — purely sequential
// access, no auxiliary partition buffers. After partitioning to the target
// depth it joins partition pairs with the same in-cache hash join as RHO.
//
// The paper's headline result (Figures 1 and 3) is that these SGXv1
// optimizations no longer pay off on SGXv2: the k sequential passes over
// the data cost more than RHO's two scatter passes now that EPC paging is
// gone. This implementation reproduces that trade-off faithfully.

#ifndef SGXB_JOIN_CRK_JOIN_H_
#define SGXB_JOIN_CRK_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs CrkJoin on `build` and `probe`. `config.crack_bits` sets
/// the partitioning depth (2^bits final partitions).
Result<JoinResult> CrkJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config);

/// \brief In-place binary radix partition of [begin, end): tuples whose
/// key has bit `bit` cleared are moved before those with it set, with the
/// two-pointer swap scheme. Returns the index of the first set-bit tuple.
/// Exposed for unit tests.
size_t CrackPartitionStep(Tuple* data, size_t begin, size_t end,
                          uint32_t bit);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_CRK_JOIN_H_
