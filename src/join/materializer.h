// Join output materialization.
//
// Joins that materialize append output tuples into per-thread chunked
// buffers. Chunks are allocated either from untrusted memory or from the
// enclave heap; in the latter case, allocations beyond the enclave's
// committed size trigger EDMM page-growth costs — exactly the effect the
// paper measures in Section 4.4 / Figure 11.

#ifndef SGXB_JOIN_MATERIALIZER_H_
#define SGXB_JOIN_MATERIALIZER_H_

#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "sgx/enclave.h"

namespace sgxb::join {

class Materializer {
 public:
  /// \brief `enclave` may be null; it is required only when `setting`
  /// places data inside the enclave.
  Materializer(int num_threads, ExecutionSetting setting,
               sgx::Enclave* enclave,
               size_t chunk_tuples = 128 * 1024);

  Materializer(const Materializer&) = delete;
  Materializer& operator=(const Materializer&) = delete;

  /// \brief Appends one output tuple on behalf of worker `tid`. Only
  /// thread `tid` may call this with its id (no internal locking).
  void Append(int tid, const JoinOutputTuple& tuple) {
    ThreadSlot& slot = *slots_[tid];
    if (slot.used == slot.capacity && !Grow(slot)) return;
    slot.current[slot.used++] = tuple;
  }

  /// \brief Total tuples materialized across all threads.
  uint64_t TotalTuples() const;

  /// \brief First allocation error encountered, if any.
  Status status() const;

  /// \brief Invokes `fn` over every chunk (pointer, count); chunks of one
  /// thread appear in append order.
  void ForEachChunk(
      const std::function<void(const JoinOutputTuple*, size_t)>& fn) const;

 private:
  struct alignas(kCacheLineSize) ThreadSlot {
    std::vector<AlignedBuffer> chunks;
    std::vector<size_t> chunk_used;
    JoinOutputTuple* current = nullptr;
    size_t used = 0;
    size_t capacity = 0;
    Status error;
  };

  bool Grow(ThreadSlot& slot);

  ExecutionSetting setting_;
  sgx::Enclave* enclave_;
  size_t chunk_tuples_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
};

}  // namespace sgxb::join

#endif  // SGXB_JOIN_MATERIALIZER_H_
