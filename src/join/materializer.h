// Join output materialization.
//
// Joins that materialize append output tuples into per-thread chunked
// buffers. Chunks come from a mem::MemoryResource — untrusted memory or
// the simulated enclave heap; in the latter case, allocations beyond the
// enclave's committed size trigger EDMM page-growth costs — exactly the
// effect the paper measures in Section 4.4 / Figure 11. An optional
// mem::ArenaPool recycles chunks across queries instead of returning
// them to the resource on destruction.

#ifndef SGXB_JOIN_MATERIALIZER_H_
#define SGXB_JOIN_MATERIALIZER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "mem/arena_pool.h"
#include "mem/memory_resource.h"

namespace sgxb::join {

class Materializer {
 public:
  static constexpr size_t kDefaultChunkTuples = 128 * 1024;

  /// \brief Appends through `resource` (null = untrusted host memory).
  /// When `pool` is non-null, chunks are acquired from and released back
  /// to it, so a long-lived pool keeps enclave pages committed across
  /// queries (the Figure 11 reuse mechanism).
  explicit Materializer(int num_threads,
                        mem::MemoryResource* resource = nullptr,
                        size_t chunk_tuples = kDefaultChunkTuples,
                        mem::ArenaPool* pool = nullptr);

  ~Materializer();

  Materializer(const Materializer&) = delete;
  Materializer& operator=(const Materializer&) = delete;

  /// \brief Appends one output tuple on behalf of worker `tid`. Only
  /// thread `tid` may call this with its id (no internal locking).
  void Append(int tid, const JoinOutputTuple& tuple) {
    ThreadSlot& slot = *slots_[tid];
    if (slot.used == slot.capacity && !Grow(slot)) return;
    slot.current[slot.used++] = tuple;
  }

  /// \brief Total tuples materialized across all threads.
  uint64_t TotalTuples() const;

  /// \brief First allocation error encountered, if any.
  Status status() const;

  /// \brief Invokes `fn` over every chunk (pointer, count); chunks of one
  /// thread appear in append order.
  void ForEachChunk(
      const std::function<void(const JoinOutputTuple*, size_t)>& fn) const;

  mem::MemoryResource* resource() const { return resource_; }

 private:
  struct alignas(kCacheLineSize) ThreadSlot {
    std::vector<AlignedBuffer> chunks;
    std::vector<size_t> chunk_used;
    JoinOutputTuple* current = nullptr;
    size_t used = 0;
    size_t capacity = 0;
    Status error;
  };

  bool Grow(ThreadSlot& slot);

  mem::MemoryResource* resource_;
  mem::ArenaPool* pool_;
  size_t chunk_tuples_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
};

}  // namespace sgxb::join

#endif  // SGXB_JOIN_MATERIALIZER_H_
