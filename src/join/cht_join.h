// Concise Hash Table join (CHT) — Barber et al., VLDB 2015. Extension
// beyond the paper's five joins.
//
// CHT replaces the bucket-chained hash table with a bitmap (one bit per
// hash slot, ~4 slots per key, with per-word popcount prefixes) plus a
// dense tuple array indexed by bitmap rank. The table shrinks from PHT's
// ~32 bytes/tuple to ~8.5 bytes/tuple — and since the paper shows that
// the SGXv2 random-access penalty grows with the randomly-hit working
// set (Fig. 4/5), a concise table directly buys back in-enclave
// performance. bench_ext_cht quantifies that effect.
//
// Collisions linear-probe within a bounded bit window; tuples that
// cannot claim a bit go to a small overflow table. Correctness never
// depends on hashing: every candidate is verified by key comparison.

#ifndef SGXB_JOIN_CHT_JOIN_H_
#define SGXB_JOIN_CHT_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs the CHT join of `build` (table side) and `probe`.
Result<JoinResult> ChtJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config);

/// \brief Bytes of the concise table (bitmap + prefixes + dense array)
/// for `build_tuples` rows; compare with PhtHashTableBytes.
size_t ChtTableBytes(size_t build_tuples);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_CHT_JOIN_H_
