#include "join/mway_join.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "join/loser_tree.h"
#include "join/materializer.h"

namespace sgxb::join {

namespace {

struct SortedTable {
  Tuple* runs = nullptr;    // run-sorted data (phase 1 output)
  Tuple* merged = nullptr;  // fully sorted data (phase 2 output)
  size_t n = 0;
  std::vector<Range> run_bounds;  // one sorted run per thread
};

bool KeyLess(const Tuple& a, const Tuple& b) { return a.key < b.key; }

// First position in [begin, end) whose key is >= key.
size_t LowerBoundKey(const Tuple* data, size_t begin, size_t end,
                     uint32_t key) {
  while (begin < end) {
    size_t mid = begin + (end - begin) / 2;
    if (data[mid].key < key) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

// Merges the slices of all runs whose keys lie in [lo_key, hi_key) into
// out (which must have exactly the right capacity), using the loser tree
// — the K-way merge structure of the original MWAY join.
void MergeKeyRange(const SortedTable& table, uint32_t lo_key,
                   uint64_t hi_key_exclusive, Tuple* out) {
  std::vector<LoserTree::Cursor> cursors;
  cursors.reserve(table.run_bounds.size());
  for (const Range& run : table.run_bounds) {
    size_t b = LowerBoundKey(table.runs, run.begin, run.end, lo_key);
    size_t e = hi_key_exclusive > 0xffffffffull
                   ? run.end
                   : LowerBoundKey(table.runs, run.begin, run.end,
                                   static_cast<uint32_t>(hi_key_exclusive));
    cursors.push_back(
        LoserTree::Cursor{table.runs + b, table.runs + e});
  }
  LoserTree tree(std::move(cursors));
  size_t k = 0;
  while (!tree.Empty()) out[k++] = tree.Pop();
}

// Counts tuples with keys in [lo, hi) across all runs.
size_t CountKeyRange(const SortedTable& table, uint32_t lo_key,
                     uint64_t hi_key_exclusive) {
  size_t count = 0;
  for (const Range& run : table.run_bounds) {
    size_t b = LowerBoundKey(table.runs, run.begin, run.end, lo_key);
    size_t e = hi_key_exclusive > 0xffffffffull
                   ? run.end
                   : LowerBoundKey(table.runs, run.begin, run.end,
                                   static_cast<uint32_t>(hi_key_exclusive));
    count += e - b;
  }
  return count;
}

}  // namespace

Result<JoinResult> MwayJoin(const Relation& build, const Relation& probe,
                            const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const int threads = config.num_threads;
  const size_t r_bytes = build.size_bytes();
  const size_t s_bytes = probe.size_bytes();

  // Working buffers: merged output first, then run storage. The run
  // buffers are dead once the merge phase completes, so under the arena
  // policy they sit past a checkpoint and are rolled back mid-join —
  // halving MWAY's peak intermediate footprint (which matters most when
  // the arena is carved from a tight EPC budget).
  JoinScratch scratch_mem(config);
  auto merged_r = scratch_mem.Allocate(r_bytes);
  if (!merged_r.ok()) return merged_r.status();
  auto merged_s = scratch_mem.Allocate(s_bytes);
  if (!merged_s.ok()) return merged_s.status();
  mem::ArenaCheckpoint runs_checkpoint;
  if (scratch_mem.arena() != nullptr) {
    runs_checkpoint = scratch_mem.arena()->Save();
  }
  auto run_r = scratch_mem.Allocate(r_bytes);
  if (!run_r.ok()) return run_r.status();
  auto run_s = scratch_mem.Allocate(s_bytes);
  if (!run_s.ok()) return run_s.status();

  SortedTable R, S;
  R.runs = static_cast<Tuple*>(run_r.value());
  R.merged = static_cast<Tuple*>(merged_r.value());
  R.n = build.num_tuples();
  S.runs = static_cast<Tuple*>(run_s.value());
  S.merged = static_cast<Tuple*>(merged_s.value());
  S.n = probe.num_tuples();
  for (int t = 0; t < threads; ++t) {
    R.run_bounds.push_back(SplitRange(R.n, threads, t));
    S.run_bounds.push_back(SplitRange(S.n, threads, t));
  }

  // Key-range splitters for the parallel merge and merge-join: thread t
  // owns keys in [splitter[t], splitter[t+1]).
  std::vector<uint64_t> splitters(threads + 1);
  for (int t = 0; t <= threads; ++t) {
    splitters[t] = (uint64_t{0x100000000ull} * t) / threads;
  }
  std::vector<size_t> r_range_begin(threads + 1, 0);
  std::vector<size_t> s_range_begin(threads + 1, 0);

  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    barrier.WaitThen([&] { recorder.Begin(); });

    // --- Phase 1: sort per-thread runs of both tables. ---
    {
      Range r = R.run_bounds[tid];
      std::memcpy(R.runs + r.begin, build.tuples() + r.begin,
                  r.size() * sizeof(Tuple));
      std::sort(R.runs + r.begin, R.runs + r.end, KeyLess);
      Range s = S.run_bounds[tid];
      std::memcpy(S.runs + s.begin, probe.tuples() + s.begin,
                  s.size() * sizeof(Tuple));
      std::sort(S.runs + s.begin, S.runs + s.end, KeyLess);
    }
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = (r_bytes + s_bytes) * 2;
      p.seq_write_bytes = r_bytes + s_bytes;
      // Sorting is ~n log(run) compares with good ILP in introsort.
      p.loop_iterations =
          static_cast<uint64_t>((R.n + S.n) *
                                (64 - __builtin_clzll(
                                          std::max<size_t>(2, R.n / threads))));
      p.ilp = perf::IlpClass::kUnrolledReordered;
      recorder.End("sort", p, threads);
      // Compute merge output offsets per key range (serial, cheap).
      size_t racc = 0, sacc = 0;
      for (int t = 0; t < threads; ++t) {
        r_range_begin[t] = racc;
        s_range_begin[t] = sacc;
        racc += CountKeyRange(R, static_cast<uint32_t>(splitters[t]),
                              splitters[t + 1]);
        sacc += CountKeyRange(S, static_cast<uint32_t>(splitters[t]),
                              splitters[t + 1]);
      }
      r_range_begin[threads] = racc;
      s_range_begin[threads] = sacc;
      recorder.Begin();
    });

    // --- Phase 2: parallel multi-way merge by key range. ---
    MergeKeyRange(R, static_cast<uint32_t>(splitters[tid]),
                  splitters[tid + 1], R.merged + r_range_begin[tid]);
    MergeKeyRange(S, static_cast<uint32_t>(splitters[tid]),
                  splitters[tid + 1], S.merged + s_range_begin[tid]);
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = r_bytes + s_bytes;
      p.seq_write_bytes = r_bytes + s_bytes;
      p.loop_iterations = R.n + S.n;
      p.ilp = perf::IlpClass::kReferenceLoop;  // heap pops are dependent
      recorder.End("merge", p, threads);
      // The run buffers are dead now — only `merged` is read from here
      // on. Roll the arena back so their chunks are released (to the
      // pool, or back to the resource which credits enclave accounting)
      // before the merge-join phase. Every other worker is parked in the
      // barrier, so the arena is touched exclusively.
      if (scratch_mem.arena() != nullptr) {
        R.runs = nullptr;
        S.runs = nullptr;
        scratch_mem.arena()->Rollback(runs_checkpoint);
      }
      recorder.Begin();
    });

    // --- Phase 3: merge-join each key range. ---
    {
      const Tuple* r = R.merged;
      const Tuple* s = S.merged;
      size_t ri = r_range_begin[tid];
      size_t re = r_range_begin[tid + 1];
      size_t si = s_range_begin[tid];
      size_t se = s_range_begin[tid + 1];
      uint64_t local = 0;
      while (ri < re && si < se) {
        if (r[ri].key < s[si].key) {
          ++ri;
        } else if (r[ri].key > s[si].key) {
          ++si;
        } else {
          uint32_t key = r[ri].key;
          size_t r_run_end = ri;
          while (r_run_end < re && r[r_run_end].key == key) ++r_run_end;
          size_t s_run_end = si;
          while (s_run_end < se && s[s_run_end].key == key) ++s_run_end;
          local += static_cast<uint64_t>(r_run_end - ri) *
                   (s_run_end - si);
          if (config.materialize) {
            for (size_t a = ri; a < r_run_end; ++a) {
              for (size_t b = si; b < s_run_end; ++b) {
                mat->Append(tid, JoinOutputTuple{key, r[a].payload,
                                                 s[b].payload});
              }
            }
          }
          ri = r_run_end;
          si = s_run_end;
        }
      }
      matches[tid] = local;
    }
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = r_bytes + s_bytes;
      p.loop_iterations = R.n + S.n;
      p.ilp = perf::IlpClass::kStreaming;
      if (config.materialize) {
        p.seq_write_bytes = S.n * sizeof(JoinOutputTuple);
      }
      recorder.End("mergejoin", p, threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  // `scratch_mem` releases the merge buffers (and credits enclave
  // accounting) on scope exit; the run buffers were already rolled back.
  return result;
}

}  // namespace sgxb::join
