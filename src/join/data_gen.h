// Join input generation (paper Section 4, "Join data").
//
// Inputs are foreign-key joins with uniformly distributed 32-bit keys: the
// build (primary-key) relation holds each key in [0, n) exactly once in
// random order; the probe (foreign-key) relation draws keys uniformly from
// the same domain, so every probe tuple matches exactly one build tuple.

#ifndef SGXB_JOIN_DATA_GEN_H_
#define SGXB_JOIN_DATA_GEN_H_

#include "common/relation.h"
#include "common/status.h"

namespace sgxb::join {

/// \brief Primary-key relation: keys are a random permutation of [0, n);
/// payloads equal the original key position so tests can trace tuples.
Result<Relation> GenerateBuildRelation(size_t num_tuples,
                                       MemoryRegion region,
                                       uint64_t seed = 42,
                                       int numa_node = 0);

/// \brief Foreign-key relation: keys uniform over [0, key_domain).
/// With key_domain equal to the build relation's size this yields exactly
/// one match per probe tuple.
Result<Relation> GenerateProbeRelation(size_t num_tuples,
                                       size_t key_domain,
                                       MemoryRegion region,
                                       uint64_t seed = 43,
                                       int numa_node = 0);

/// \brief Skewed foreign-key relation: keys Zipf-distributed over
/// [0, key_domain) with parameter `theta` (0 = uniform; 0.99 = heavily
/// skewed). Extension beyond the paper's uniform-only workloads; used by
/// the skew ablation bench.
Result<Relation> GenerateSkewedProbeRelation(size_t num_tuples,
                                             size_t key_domain,
                                             double zipf_theta,
                                             MemoryRegion region,
                                             uint64_t seed = 44,
                                             int numa_node = 0);

/// \brief Exact number of matching pairs between two relations, computed
/// with a straightforward reference algorithm (hash map). Test oracle.
uint64_t ReferenceMatchCount(const Relation& build, const Relation& probe);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_DATA_GEN_H_
