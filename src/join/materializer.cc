#include "join/materializer.h"

namespace sgxb::join {

Materializer::Materializer(int num_threads, mem::MemoryResource* resource,
                           size_t chunk_tuples, mem::ArenaPool* pool)
    : resource_(resource != nullptr ? resource : mem::Untrusted()),
      pool_(pool),
      chunk_tuples_(chunk_tuples) {
  slots_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    slots_.push_back(std::make_unique<ThreadSlot>());
  }
}

Materializer::~Materializer() {
  if (pool_ == nullptr) return;
  for (auto& slot : slots_) {
    for (auto& chunk : slot->chunks) {
      pool_->Release(std::move(chunk));
    }
  }
}

bool Materializer::Grow(ThreadSlot& slot) {
  if (!slot.error.ok()) return false;
  if (slot.current != nullptr) {
    slot.chunk_used.back() = slot.used;
  }
  const size_t bytes = chunk_tuples_ * sizeof(JoinOutputTuple);
  Result<AlignedBuffer> buf = pool_ != nullptr
                                  ? pool_->Acquire(bytes)
                                  : resource_->Allocate(bytes);
  if (!buf.ok()) {
    slot.error = buf.status();
    slot.current = nullptr;
    slot.used = slot.capacity = 0;
    return false;
  }
  slot.chunks.push_back(std::move(buf).value());
  slot.chunk_used.push_back(0);
  slot.current = slot.chunks.back().As<JoinOutputTuple>();
  slot.used = 0;
  // Pool chunks are rounded up to the pool's chunk size; use all of it.
  slot.capacity = slot.chunks.back().size() / sizeof(JoinOutputTuple);
  return true;
}

uint64_t Materializer::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    for (size_t i = 0; i + 1 < slot->chunk_used.size(); ++i) {
      total += slot->chunk_used[i];
    }
    total += slot->used;
  }
  return total;
}

Status Materializer::status() const {
  for (const auto& slot : slots_) {
    if (!slot->error.ok()) return slot->error;
  }
  return Status::OK();
}

void Materializer::ForEachChunk(
    const std::function<void(const JoinOutputTuple*, size_t)>& fn) const {
  for (const auto& slot : slots_) {
    for (size_t i = 0; i < slot->chunks.size(); ++i) {
      size_t used =
          (i + 1 == slot->chunks.size()) ? slot->used : slot->chunk_used[i];
      if (used > 0) {
        fn(slot->chunks[i].As<JoinOutputTuple>(), used);
      }
    }
  }
}

}  // namespace sgxb::join
