// Radix-partitioning kernels: histogram and scatter, in the paper's
// reference (Listing 1) and manually unrolled + reordered (Listing 2)
// flavours, plus an AVX index-buffering variant.
//
// These loops are where the paper discovered the enclave-mode
// instruction-reordering penalty (Section 4.2, Figure 7): inside an SGXv2
// enclave the reference loop runs 225% slower, while computing 8 indexes
// before issuing the 8 increments recovers most of the loss. The compiler
// is prevented from fusing the unrolled index/increment groups back
// together with lightweight barriers, mirroring the observation that GCC's
// unroll pragma (which interleaves) does not help.

#ifndef SGXB_JOIN_RADIX_COMMON_H_
#define SGXB_JOIN_RADIX_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/probe_pipeline.h"
#include "perf/access_profile.h"

namespace sgxb::join {

// --- Histogram (count keys per radix bin) --------------------------------

/// \brief Listing 1: straightforward histogram loop.
void HistogramReference(const Tuple* data, size_t n, uint32_t mask,
                        uint32_t shift, uint32_t* hist);

/// \brief Listing 2: 8x manual unroll, all index computations before all
/// increments.
void HistogramUnrolled(const Tuple* data, size_t n, uint32_t mask,
                       uint32_t shift, uint32_t* hist);

/// \brief Deeper unroll buffering 16 indexes through SIMD registers (the
/// paper's AVX variant); falls back to HistogramUnrolled without AVX2.
void HistogramSimd(const Tuple* data, size_t n, uint32_t mask,
                   uint32_t shift, uint32_t* hist);

/// \brief Picks the histogram kernel for a flavour.
using HistogramKernel = void (*)(const Tuple*, size_t, uint32_t, uint32_t,
                                 uint32_t*);
HistogramKernel PickHistogramKernel(KernelFlavor flavor);

// --- Scatter (copy tuples to their partition) ------------------------------

/// \brief Reference scatter: for each tuple, find its bin and store it at
/// offsets[bin]++ in `out`. `offsets` are running positions.
void ScatterReference(const Tuple* data, size_t n, uint32_t mask,
                      uint32_t shift, uint64_t* offsets, Tuple* out);

/// \brief Unrolled + reordered scatter (the paper applies the optimization
/// to the partitioning copy phase as well, Figure 6).
void ScatterUnrolled(const Tuple* data, size_t n, uint32_t mask,
                     uint32_t shift, uint64_t* offsets, Tuple* out);

using ScatterKernel = void (*)(const Tuple*, size_t, uint32_t, uint32_t,
                               uint64_t*, Tuple*);
ScatterKernel PickScatterKernel(KernelFlavor flavor);

/// \brief Scratch for the software-managed-buffer scatter: one cache
/// line (8 tuples) per partition, flushed to the output when full.
class ScatterBufferScratch {
 public:
  /// \brief Ensures room for 2^bits partitions. Rejects negative bit
  /// counts and fanouts whose buffer size (2^bits * 8 tuples) would
  /// overflow size_t instead of silently wrapping the allocation.
  Status Reserve(int bits);

  Tuple* buffers() { return buffers_.data(); }
  uint8_t* fill() { return fill_.data(); }

 private:
  std::vector<Tuple> buffers_;   // fanout x 8 tuples
  std::vector<uint8_t> fill_;    // entries per partition buffer
};

/// \brief Software write-combining scatter (Balkesen et al.): tuples are
/// staged in per-partition cache-line buffers and written out a full
/// line at a time. Converts the scattered stores into cache-line-granular
/// bursts — the classic radix-partitioning optimization, and a natural
/// fit for enclaves since it both groups stores (software MLP) and cuts
/// write-allocate traffic. Output order within a partition is preserved.
void ScatterSoftwareBuffered(const Tuple* data, size_t n, uint32_t mask,
                             uint32_t shift, uint64_t* offsets,
                             Tuple* out, ScatterBufferScratch* scratch);

// --- In-cache hash join on one partition -----------------------------------
// The bucket-chained in-cache join used by both RHO and CrkJoin ("the same
// in-cache join method as RHO", Section 4). Chains are index-linked arrays
// sized to the partition, so everything stays cache-resident.

/// \brief Scratch space for one in-cache join; reusable across partitions.
class InCacheJoinScratch {
 public:
  /// \brief Ensures capacity for a build partition of `n` tuples.
  void Reserve(size_t n);

  uint32_t* next() { return next_.data(); }
  uint32_t* bucket_heads() { return heads_.data(); }
  size_t bucket_count() const { return heads_cap_; }

  /// \brief Number of buckets (power of two) for `n` build tuples.
  static size_t BucketsFor(size_t n);

 private:
  std::vector<uint32_t> next_;
  std::vector<uint32_t> heads_;
  size_t heads_cap_ = 0;
};

/// \brief Joins one partition pair; returns the number of matches. If
/// `emit` is non-null it is called for each match with (build, probe).
/// `probe_mode` selects the probe-loop scheduling: the default keeps the
/// flavour-derived scalar loops (a well-partitioned build side is cache
/// resident, so callers opt in only when partitions may spill — e.g. when
/// sweeping radix bits). `probe_width` is the group size / ring width
/// (0 = calibrated default).
using MatchEmitter = void (*)(void* ctx, const Tuple& build,
                              const Tuple& probe);
uint64_t InCachePartitionJoin(
    const Tuple* build, size_t build_n, const Tuple* probe, size_t probe_n,
    KernelFlavor flavor, InCacheJoinScratch* scratch,
    MatchEmitter emit = nullptr, void* emit_ctx = nullptr,
    exec::ProbeMode probe_mode = exec::ProbeMode::kTupleAtATime,
    int probe_width = 0);

// --- Profile helpers ---------------------------------------------------------

/// \brief Access profile of one histogram pass over `n` tuples with 2^bits
/// bins, in the given flavour.
perf::AccessProfile HistogramProfile(size_t n, int bits,
                                     KernelFlavor flavor);

/// \brief Access profile of one scatter pass of `n` tuples into 2^bits
/// partitions spread over `out_bytes` of output.
perf::AccessProfile ScatterProfile(size_t n, int bits, size_t out_bytes,
                                   KernelFlavor flavor);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_RADIX_COMMON_H_
