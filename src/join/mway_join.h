// Multi-way sort-merge join (MWAY) — Kim et al.'s sort-merge join as
// shipped in TEEBench.
//
// Each thread sorts a contiguous run of both inputs; the runs are merged
// into fully sorted tables with a parallel multi-way merge (threads own
// disjoint key ranges found by binary search over the runs); finally the
// sorted tables are merge-joined in one pass, again parallelized by key
// range. The original uses AVX bitonic sorting networks for the run sort;
// this implementation uses introsort for the runs and keeps the multi-way
// merge structure — the memory access pattern (sequential runs, merge
// fan-in) that the paper's SGX analysis depends on is preserved.

#ifndef SGXB_JOIN_MWAY_JOIN_H_
#define SGXB_JOIN_MWAY_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs the MWAY sort-merge join of `build` and `probe`.
Result<JoinResult> MwayJoin(const Relation& build, const Relation& probe,
                            const JoinConfig& config);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_MWAY_JOIN_H_
