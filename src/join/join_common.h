// Shared configuration, result, and phase-recording types for all join
// algorithms (paper Section 4).
//
// Every join takes a build (smaller) and a probe (larger) Relation plus a
// JoinConfig, runs with `num_threads` workers in the TEEBench style (all
// workers execute the whole pipeline, synchronizing at phase barriers), and
// returns the match count plus a per-phase breakdown with access profiles
// for the cost model.

#ifndef SGXB_JOIN_JOIN_COMMON_H_
#define SGXB_JOIN_JOIN_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "common/relation.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"
#include "exec/probe_pipeline.h"
#include "mem/arena.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "obs/trace.h"
#include "perf/access_profile.h"
#include "sgx/enclave.h"
#include "sync/task_queue.h"

namespace sgxb::join {

class Materializer;

/// \brief How a join obtains its intermediate structures (hash tables,
/// partition buffers, sort runs) from the memory layer.
enum class AllocPolicy {
  /// One MemoryResource allocation per structure — the pre-arena
  /// behaviour, kept as the ablation baseline (bench_ablation_arena).
  kDirect = 0,
  /// Carve structures from a per-join Arena (2 MiB chunks, optionally
  /// recycled through JoinConfig::arena_pool across queries).
  kArena = 1,
};

/// \brief The join algorithms in the paper's benchmark suite (Figure 3).
enum class JoinAlgorithm {
  kPht = 0,   ///< Parallel hash table join (Blanas et al.).
  kRho = 1,   ///< Radix hash optimized join (Balkesen/Manegold et al.).
  kMway = 2,  ///< Multi-way sort-merge join (Kim et al.).
  kInl = 3,   ///< Index nested loop join over a B+-tree.
  kCrk = 4,   ///< CrkJoin, the SGXv1-optimized cracking join.
  kCht = 5,   ///< Concise Hash Table join (extension, Barber et al.).
};

const char* JoinAlgorithmToString(JoinAlgorithm algo);

struct JoinConfig {
  int num_threads = 1;
  /// Listing-1-style loops vs the paper's unroll-and-reorder optimization.
  KernelFlavor flavor = KernelFlavor::kReference;
  /// Task queue used by task-based joins (RHO, CrkJoin); Figure 10 knob.
  TaskQueueKind queue = TaskQueueKind::kLockFree;
  ExecutionSetting setting = ExecutionSetting::kPlainCpu;
  /// Enclave backing trusted allocations; required for SGX settings that
  /// materialize output or allocate intermediates dynamically.
  sgx::Enclave* enclave = nullptr;
  /// Materialize output tuples (Section 4.4 / Figure 11 and Section 6).
  bool materialize = false;
  /// Optional caller-owned output sink; when null and `materialize` is
  /// set, the join uses an internal materializer and discards the output
  /// after counting (the common benchmarking configuration).
  Materializer* output = nullptr;

  /// RHO: total radix bits over both passes and the number of passes.
  int radix_bits = 14;
  int radix_passes = 2;
  /// CrkJoin: partitioning depth in bits.
  int crack_bits = 12;

  /// Probe-loop scheduling (exec/probe_pipeline.h, docs/prefetching.md).
  /// Unset = SGXBENCH_PROBE_MODE if present, else derived from `flavor`:
  /// the reference flavour probes tuple-at-a-time (the paper's Listing-1
  /// behaviour), the optimized flavour uses group prefetching.
  std::optional<exec::ProbeMode> probe_mode;
  /// Group size (group prefetch) / ring width (AMAC). 0 = the calibrated
  /// default (SGXBENCH_PROBE_BATCH / SGXBENCH_PROBE_DIST).
  int probe_batch = 0;

  /// Memory resource every intermediate and materialized chunk comes
  /// from; null = derived from `setting`/`enclave` (mem::ResourceFor).
  mem::MemoryResource* resource = nullptr;
  /// Chunk pool for warm reuse across queries (docs/memory.md); null =
  /// chunks come straight from the resource and die with the join.
  mem::ArenaPool* arena_pool = nullptr;
  /// Intermediate-allocation strategy; kArena is the default path.
  AllocPolicy alloc_policy = AllocPolicy::kArena;
};

/// \brief The resource the join allocates from: `config.resource` if set,
/// else derived from the setting/enclave.
mem::MemoryResource* EffectiveResource(const JoinConfig& config);

/// \brief Owns one join invocation's intermediate memory. Under
/// AllocPolicy::kArena the carve-outs share 2 MiB chunks (recycled via
/// JoinConfig::arena_pool when present); under kDirect each call is its
/// own resource allocation. Everything is released — and, for enclave
/// resources, credited back to the heap accounting — when the scratch is
/// destroyed. Not thread-safe; allocate before fanning out workers.
class JoinScratch {
 public:
  explicit JoinScratch(const JoinConfig& config);

  /// \brief 64-byte-aligned scratch block, alive until destruction.
  Result<void*> Allocate(size_t bytes);

  /// \brief The backing arena, or null under kDirect. Joins with phased
  /// memory use it for checkpoint/rollback (e.g. MWAY's sort runs die
  /// after the merge).
  mem::Arena* arena() { return arena_.has_value() ? &*arena_ : nullptr; }
  mem::MemoryResource* resource() const { return resource_; }

 private:
  mem::MemoryResource* resource_;
  std::optional<mem::Arena> arena_;
  std::vector<AlignedBuffer> direct_;
};

/// \brief Probe scheduling a join actually uses for `config` (resolves
/// the env/flavour defaults described at JoinConfig::probe_mode).
exec::ProbeMode EffectiveProbeMode(const JoinConfig& config);

/// \brief Resolved group size / ring width for `mode`, from
/// `config.probe_batch` or the calibrated defaults, clamped to
/// exec::kMaxProbeWidth.
int EffectiveProbeWidth(const JoinConfig& config, exec::ProbeMode mode);

struct JoinResult {
  /// Number of matching (build, probe) pairs.
  uint64_t matches = 0;
  /// Total measured wall time on the host, ns.
  double host_ns = 0;
  perf::PhaseBreakdown phases;
  int threads = 1;

  /// Throughput metric as defined in the paper: (|R| + |S|) / time.
  double RowsPerSecond(size_t build_rows, size_t probe_rows) const {
    if (host_ns <= 0) return 0;
    return (static_cast<double>(build_rows) + probe_rows) /
           (host_ns * 1e-9);
  }
};

/// \brief Records phase boundaries from worker thread 0. Workers call
/// BeginPhase/EndPhase around barrier-synchronized sections; only tid 0
/// writes, so no synchronization is needed beyond the join's own barriers.
class PhaseRecorder {
 public:
  void Begin() { timer_.Restart(); }

  /// \brief Closes the current phase: elapsed time since the last
  /// Begin()/End() is attributed to `name` with the given profile.
  void End(const std::string& name, const perf::AccessProfile& profile,
           int threads) {
    perf::PhaseStats s;
    s.name = name;
    s.host_ns = static_cast<double>(timer_.ElapsedNanos());
    s.profile = profile;
    s.threads = threads;
    if (obs::TracingEnabled()) {
      obs::TraceCompleteEndingNow(obs::InternName(name), "join", s.host_ns);
    }
    breakdown_.Add(std::move(s));
    timer_.Restart();
  }

  /// \brief Nanoseconds since the last Begin()/End(), without closing the
  /// phase. Used when a wall-clock phase is split into sub-phases.
  double ElapsedNs() const {
    return static_cast<double>(timer_.ElapsedNanos());
  }

  /// \brief Appends a pre-built phase entry and restarts the timer.
  void AddRaw(perf::PhaseStats stats) {
    if (obs::TracingEnabled()) {
      obs::TraceCompleteEndingNow(obs::InternName(stats.name), "join",
                                  stats.host_ns);
    }
    breakdown_.Add(std::move(stats));
    timer_.Restart();
  }

  perf::PhaseBreakdown Take() { return std::move(breakdown_); }

 private:
  WallTimer timer_;
  perf::PhaseBreakdown breakdown_;
};

/// \brief Multiplicative hash for 32-bit join keys (Fibonacci hashing),
/// mapping into [0, 2^bits).
inline uint32_t HashKey(uint32_t key, uint32_t bits) {
  return static_cast<uint32_t>((key * 2654435761u) >> (32 - bits));
}

/// \brief Radix function used by partitioning: the `bits` bits of the key
/// starting at `shift` (the paper partitions by least significant bits).
inline uint32_t RadixOf(uint32_t key, uint32_t mask, uint32_t shift) {
  return (key & mask) >> shift;
}

/// \brief Validates the common preconditions shared by all joins.
Status ValidateJoinInputs(const Relation& build, const Relation& probe,
                          const JoinConfig& config);

/// \brief Allocates an intermediate structure (hash table, partition
/// buffer, ...) in the memory region implied by the execution setting:
/// from the enclave heap when data lives in the enclave, else untrusted.
Result<AlignedBuffer> AllocateIntermediate(size_t bytes,
                                           const JoinConfig& config);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_JOIN_COMMON_H_
