// Shared bucket-chained hash table (Blanas et al. layout).
//
// Extracted from the PHT join so that every consumer of a latched-build /
// latch-free-probe chained table — PhtJoin itself and the fused TPC-H
// pipelines (exec/pipeline.h, tpch/pipelines.cc) — runs one
// implementation. The table does not own its memory: callers carve the
// bucket + overflow arrays from a JoinScratch / Arena / resource buffer
// (sized by BytesFor) so allocation policy and enclave accounting stay
// with the owner.
//
// Concurrency contract: Insert() takes the head bucket's latch and is
// safe from any number of threads. ProbeBucket() and the batched cursor
// are latch-free and must only run once all inserts have completed (the
// joins barrier between build and probe; the pipeline DAG orders build
// pipelines before probing ones).

#ifndef SGXB_JOIN_HASH_TABLE_H_
#define SGXB_JOIN_HASH_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/types.h"
#include "join/join_common.h"
#include "sync/spinlock.h"

namespace sgxb::join {

struct BucketChainTable {
  // Bucket layout follows the classic multi-core hash join code: two
  // in-line tuple slots, a latch for parallel builds, and an overflow
  // link. 32 bytes, so a chain hop never spans two cache lines.
  struct Bucket {
    SpinLock latch;
    uint32_t count;
    uint32_t next;  // index into the overflow pool, kNoOverflow if none
    Tuple tuples[2];
  };
  static_assert(sizeof(Bucket) <= 32, "Bucket should stay compact");

  static constexpr uint32_t kNoOverflow = 0xffffffffu;

  /// \brief Head-bucket count for `build_tuples` inserts: power of two,
  /// averaging two tuples per bucket like the original implementation.
  static size_t NumBuckets(size_t build_tuples) {
    size_t buckets = 16;
    while (buckets * 2 < build_tuples) buckets <<= 1;
    return buckets;
  }

  static uint32_t BitsOf(size_t pow2) {
    uint32_t bits = 0;
    while ((size_t{1} << bits) < pow2) ++bits;
    return bits;
  }

  /// \brief Worst case: every insert spills once -> one overflow bucket
  /// per two build tuples, plus slack.
  static size_t OverflowCap(size_t build_tuples) {
    return build_tuples / 2 + 16;
  }

  /// \brief Bytes Bind() expects for a table of `build_tuples` capacity.
  static size_t BytesFor(size_t build_tuples) {
    return (NumBuckets(build_tuples) + OverflowCap(build_tuples)) *
           sizeof(Bucket);
  }

  Bucket* buckets = nullptr;
  size_t num_buckets = 0;
  uint32_t hash_bits = 0;
  Bucket* overflow = nullptr;
  std::atomic<uint32_t> overflow_next{0};
  size_t overflow_cap = 0;

  /// \brief Carves the bucket and overflow arrays out of `mem`, which
  /// must hold BytesFor(build_capacity) bytes (64-byte aligned). Bucket
  /// headers are NOT initialized — call InitBuckets over [0, num_buckets)
  /// (typically split across the build gang) before the first Insert.
  void Bind(void* mem, size_t build_capacity) {
    num_buckets = NumBuckets(build_capacity);
    hash_bits = BitsOf(num_buckets);
    buckets = static_cast<Bucket*>(mem);
    overflow = buckets + num_buckets;
    overflow_cap = OverflowCap(build_capacity);
    overflow_next.store(0, std::memory_order_relaxed);
  }

  /// \brief Placement-initializes bucket headers [begin, end).
  void InitBuckets(size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      Bucket* bucket = new (&buckets[b]) Bucket();
      bucket->count = 0;
      bucket->next = kNoOverflow;
    }
  }

  uint32_t HashOf(uint32_t key) const { return HashKey(key, hash_bits); }

  // Inserts under the head bucket's latch. When the head is full its
  // contents are pushed into a fresh overflow bucket, so inserts always
  // hit the head (constant work under the latch).
  void Insert(const Tuple& t) {
    Bucket& head = buckets[HashKey(t.key, hash_bits)];
    head.latch.lock();
    if (head.count == 2) {
      uint32_t idx = overflow_next.fetch_add(1, std::memory_order_relaxed);
      assert(idx < overflow_cap && "PHT overflow pool exhausted");
      Bucket& spill = overflow[idx];
      spill.count = head.count;
      spill.next = head.next;
      spill.tuples[0] = head.tuples[0];
      spill.tuples[1] = head.tuples[1];
      head.next = idx;
      head.count = 0;
    }
    head.tuples[head.count++] = t;
    head.latch.unlock();
  }

  // Probes the chain starting at `buckets[bucket]` (hash hoisted to the
  // caller so batched probes compute it exactly once per tuple). The
  // probe phase is ordered after all builds, so this path must never
  // touch the latch; count/next are still snapshotted into const locals
  // before the slot scan so a bucket is read exactly once per hop and a
  // mutated head can never walk the scan out of bounds.
  template <typename OnMatch>
  uint64_t ProbeBucket(uint32_t bucket, const Tuple& t,
                       OnMatch&& on_match) const {
    uint64_t matches = 0;
    const Bucket* b = &buckets[bucket];
    for (;;) {
      const uint32_t count = b->count <= 2 ? b->count : 2;
      const uint32_t next = b->next;
      for (uint32_t i = 0; i < count; ++i) {
        if (b->tuples[i].key == t.key) {
          ++matches;
          on_match(b->tuples[i], t);
        }
      }
      if (next == kNoOverflow) break;
      assert(next < overflow_cap);
      b = &overflow[next];
    }
    return matches;
  }
};

// Probe state machine for the batched drivers (exec/probe_pipeline.h):
// one hop per Advance() — head bucket, then each overflow bucket. Buckets
// are 32 bytes in a cache-aligned array, so a hop never spans two lines.
template <typename OnMatch>
struct BucketChainCursor {
  static constexpr int kPrefetchLines = 1;
  const BucketChainTable* table = nullptr;
  OnMatch* on_match = nullptr;
  uint64_t matches = 0;

  Tuple probe_;
  const BucketChainTable::Bucket* b_ = nullptr;

  void Reset(const Tuple& t) {
    probe_ = t;
    b_ = &table->buckets[table->HashOf(t.key)];
  }
  const void* Target() const { return b_; }
  void Advance() {
    const uint32_t count = b_->count <= 2 ? b_->count : 2;
    const uint32_t next = b_->next;
    for (uint32_t i = 0; i < count; ++i) {
      if (b_->tuples[i].key == probe_.key) {
        ++matches;
        (*on_match)(b_->tuples[i], probe_);
      }
    }
    b_ = next == BucketChainTable::kNoOverflow ? nullptr
                                               : &table->overflow[next];
  }
};

}  // namespace sgxb::join

#endif  // SGXB_JOIN_HASH_TABLE_H_
