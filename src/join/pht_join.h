// Parallel Hash Table join (PHT) — Blanas et al.'s no-partitioning join.
//
// Multiple threads build one shared bucket-chained hash table from the
// smaller input (buckets are latched for parallel inserts), then probe it
// in parallel over partitions of the larger input. Because the shared
// table is much larger than cache for the paper's table sizes, PHT is the
// join that suffers most from the SGXv2 random-access penalty (Sections
// 4.1 and Figure 4).

#ifndef SGXB_JOIN_PHT_JOIN_H_
#define SGXB_JOIN_PHT_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs the PHT join of `build` (hash side) and `probe`.
Result<JoinResult> PhtJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config);

/// \brief Bytes the shared hash table will occupy for `build_tuples`
/// rows; exposed so benchmarks can report the random-access working set.
size_t PhtHashTableBytes(size_t build_tuples);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_PHT_JOIN_H_
