#include "join/join_common.h"

#include "perf/calibration.h"

namespace sgxb::join {

exec::ProbeMode EffectiveProbeMode(const JoinConfig& config) {
  if (config.probe_mode.has_value()) return *config.probe_mode;
  return exec::ProbeModeFromEnv(config.flavor == KernelFlavor::kReference
                                    ? exec::ProbeMode::kTupleAtATime
                                    : exec::ProbeMode::kGroupPrefetch);
}

int EffectiveProbeWidth(const JoinConfig& config, exec::ProbeMode mode) {
  if (config.probe_batch > 0) {
    return exec::ClampProbeWidth(config.probe_batch);
  }
  const perf::CalibrationParams& cal = perf::CalibrationParams::Default();
  return exec::ClampProbeWidth(mode == exec::ProbeMode::kAmac
                                   ? cal.probe_prefetch_distance
                                   : cal.probe_batch_size);
}

const char* JoinAlgorithmToString(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kPht:
      return "PHT";
    case JoinAlgorithm::kRho:
      return "RHO";
    case JoinAlgorithm::kMway:
      return "MWAY";
    case JoinAlgorithm::kInl:
      return "INL";
    case JoinAlgorithm::kCrk:
      return "CrkJoin";
    case JoinAlgorithm::kCht:
      return "CHT";
  }
  return "unknown";
}

Status ValidateJoinInputs(const Relation& build, const Relation& probe,
                          const JoinConfig& config) {
  if (build.empty() || probe.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (config.num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.radix_bits <= 0 || config.radix_bits > 24) {
    return Status::InvalidArgument("radix_bits must be in [1, 24]");
  }
  if (config.radix_passes != 1 && config.radix_passes != 2) {
    return Status::InvalidArgument("radix_passes must be 1 or 2");
  }
  if (config.materialize &&
      config.setting == ExecutionSetting::kSgxDataInEnclave &&
      config.enclave == nullptr) {
    return Status::InvalidArgument(
        "materializing inside the enclave requires an Enclave instance");
  }
  return Status::OK();
}

Result<AlignedBuffer> AllocateIntermediate(size_t bytes,
                                           const JoinConfig& config) {
  return EffectiveResource(config)->Allocate(bytes);
}

mem::MemoryResource* EffectiveResource(const JoinConfig& config) {
  if (config.resource != nullptr) return config.resource;
  return mem::ResourceFor(config.setting, config.enclave);
}

JoinScratch::JoinScratch(const JoinConfig& config)
    : resource_(EffectiveResource(config)) {
  if (config.alloc_policy == AllocPolicy::kArena) {
    arena_.emplace(resource_, /*chunk_bytes=*/0, config.arena_pool);
  }
}

Result<void*> JoinScratch::Allocate(size_t bytes) {
  if (arena_.has_value()) return arena_->Allocate(bytes);
  AlignedBuffer buf;
  SGXB_ASSIGN_OR_RETURN(buf, resource_->Allocate(bytes));
  void* p = buf.data();
  direct_.push_back(std::move(buf));
  return p;
}

}  // namespace sgxb::join
