#include "join/join_common.h"

namespace sgxb::join {

const char* JoinAlgorithmToString(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kPht:
      return "PHT";
    case JoinAlgorithm::kRho:
      return "RHO";
    case JoinAlgorithm::kMway:
      return "MWAY";
    case JoinAlgorithm::kInl:
      return "INL";
    case JoinAlgorithm::kCrk:
      return "CrkJoin";
    case JoinAlgorithm::kCht:
      return "CHT";
  }
  return "unknown";
}

Status ValidateJoinInputs(const Relation& build, const Relation& probe,
                          const JoinConfig& config) {
  if (build.empty() || probe.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (config.num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.radix_bits <= 0 || config.radix_bits > 24) {
    return Status::InvalidArgument("radix_bits must be in [1, 24]");
  }
  if (config.radix_passes != 1 && config.radix_passes != 2) {
    return Status::InvalidArgument("radix_passes must be 1 or 2");
  }
  if (config.materialize &&
      config.setting == ExecutionSetting::kSgxDataInEnclave &&
      config.enclave == nullptr) {
    return Status::InvalidArgument(
        "materializing inside the enclave requires an Enclave instance");
  }
  return Status::OK();
}

Result<AlignedBuffer> AllocateIntermediate(size_t bytes,
                                           const JoinConfig& config) {
  if (config.setting == ExecutionSetting::kSgxDataInEnclave &&
      config.enclave != nullptr) {
    return config.enclave->Allocate(bytes);
  }
  MemoryRegion region =
      config.setting == ExecutionSetting::kSgxDataInEnclave
          ? MemoryRegion::kEnclave
          : MemoryRegion::kUntrusted;
  return AlignedBuffer::Allocate(bytes, region);
}

}  // namespace sgxb::join
