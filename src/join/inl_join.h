// Index Nested Loop join (INL) over a B+-tree.
//
// Uses an existing B-tree index on the inner (build) table to find
// matching tuples for each outer (probe) tuple, instead of iterating over
// the inner table (paper Section 4, join #4). The index build (sort +
// bulk load) is reported as its own phase; the TEEBench setting treats
// the index as pre-existing, so benchmarks typically time only the probe
// phase, which is dominated by dependent random reads over the tree.

#ifndef SGXB_JOIN_INL_JOIN_H_
#define SGXB_JOIN_INL_JOIN_H_

#include "join/join_common.h"

namespace sgxb::join {

/// \brief Runs the INL join of `build` (indexed side) and `probe`.
Result<JoinResult> InlJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config);

}  // namespace sgxb::join

#endif  // SGXB_JOIN_INL_JOIN_H_
