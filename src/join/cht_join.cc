#include "join/cht_join.h"

#include <atomic>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "exec/probe_pipeline.h"
#include "join/materializer.h"

namespace sgxb::join {

namespace {

// Linear-probe window over bit positions before a tuple spills to the
// overflow table (Barber et al. use a similar small threshold).
constexpr uint32_t kProbeWindow = 16;

// One bitmap word: 64 slot bits plus the popcount of all preceding words
// (the "concise" trick enabling rank computation in O(1)).
struct BitmapWord {
  uint64_t bits;
  uint32_t prefix;
};

struct ConciseTable {
  std::vector<BitmapWord> bitmap;  // m/64 words, m a power of two
  std::vector<Tuple> dense;        // one entry per set bit
  std::unordered_multimap<uint32_t, uint32_t> overflow;
  uint64_t slot_mask = 0;  // m - 1
  uint32_t hash_bits = 0;

  bool BitSet(uint64_t pos) const {
    return (bitmap[pos >> 6].bits >> (pos & 63)) & 1u;
  }
  void SetBit(uint64_t pos) {
    bitmap[pos >> 6].bits |= uint64_t{1} << (pos & 63);
  }
  uint64_t Rank(uint64_t pos) const {
    const BitmapWord& w = bitmap[pos >> 6];
    uint64_t before = w.bits & ((uint64_t{1} << (pos & 63)) - 1);
    return w.prefix + __builtin_popcountll(before);
  }
};

uint64_t SlotOf(uint32_t key, const ConciseTable& table) {
  return HashKey(key, table.hash_bits);
}

// Two-hop probe state machine for the batched drivers: hop 1 reads the
// bitmap word(s) covering the probe window and records the ranks of the
// set candidates; hop 2 reads the dense entries at those ranks (they are
// consecutive, so one prefetch span covers them). Overflow matches are
// resolved in a separate tuple-at-a-time pass by the caller.
struct ChtProbeCursor {
  static constexpr int kPrefetchLines = 2;
  const ConciseTable* table = nullptr;
  Materializer* mat = nullptr;
  int tid = 0;
  uint64_t matches = 0;

  Tuple probe_;
  bool in_dense_ = false;
  const void* target_ = nullptr;
  uint32_t ranks_[kProbeWindow];
  uint32_t num_ranks_ = 0;

  void Reset(const Tuple& t) {
    probe_ = t;
    in_dense_ = false;
    target_ = &table->bitmap[SlotOf(t.key, *table) >> 6];
  }
  const void* Target() const { return target_; }
  void Advance() {
    if (!in_dense_) {
      num_ranks_ = 0;
      const uint64_t base = SlotOf(probe_.key, *table);
      for (uint32_t j = 0; j < kProbeWindow; ++j) {
        uint64_t candidate = (base + j) & table->slot_mask;
        if (table->BitSet(candidate)) {
          ranks_[num_ranks_++] =
              static_cast<uint32_t>(table->Rank(candidate));
        }
      }
      if (num_ranks_ == 0) {
        target_ = nullptr;
        return;
      }
      in_dense_ = true;
      target_ = &table->dense[ranks_[0]];
      return;
    }
    for (uint32_t k = 0; k < num_ranks_; ++k) {
      const Tuple& entry = table->dense[ranks_[k]];
      if (entry.key == probe_.key) {
        ++matches;
        if (mat != nullptr) {
          mat->Append(tid, JoinOutputTuple{probe_.key, entry.payload,
                                           probe_.payload});
        }
      }
    }
    target_ = nullptr;
  }
};

}  // namespace

size_t ChtTableBytes(size_t build_tuples) {
  size_t slots = 64;
  while (slots < build_tuples * 4) slots <<= 1;
  return slots / 64 * sizeof(BitmapWord) + build_tuples * sizeof(Tuple);
}

Result<JoinResult> ChtJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const int threads = config.num_threads;
  const size_t n = build.num_tuples();

  // ~4 slots per build tuple, power of two.
  size_t slots = 64;
  while (slots < n * 4) slots <<= 1;

  ConciseTable table;
  table.bitmap.assign(slots / 64, BitmapWord{0, 0});
  table.slot_mask = slots - 1;
  uint32_t bits = 0;
  while ((size_t{1} << bits) < slots) ++bits;
  table.hash_bits = bits;

  // Claimed bit position per build tuple (uint64 max = overflow).
  constexpr uint64_t kOverflow = ~uint64_t{0};
  std::vector<uint64_t> claimed(n);

  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;
  const exec::ProbeMode probe_mode = EffectiveProbeMode(config);
  const int probe_width = EffectiveProbeWidth(config, probe_mode);
  const bool batched = probe_mode != exec::ProbeMode::kTupleAtATime;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    barrier.WaitThen([&] {
      recorder.Begin();
      // --- Build pass 1 (serial: bit claiming is order-dependent) ---
      const Tuple* bt = build.tuples();
      for (size_t i = 0; i < n; ++i) {
        uint64_t base = SlotOf(bt[i].key, table);
        uint64_t pos = kOverflow;
        for (uint32_t j = 0; j < kProbeWindow; ++j) {
          uint64_t candidate = (base + j) & table.slot_mask;
          if (!table.BitSet(candidate)) {
            table.SetBit(candidate);
            pos = candidate;
            break;
          }
        }
        claimed[i] = pos;
        if (pos == kOverflow) {
          table.overflow.emplace(bt[i].key, bt[i].payload);
        }
      }
      // Prefix popcounts.
      uint32_t total = 0;
      for (BitmapWord& w : table.bitmap) {
        w.prefix = total;
        total += static_cast<uint32_t>(__builtin_popcountll(w.bits));
      }
      table.dense.resize(total);
      // --- Build pass 2: place tuples at their rank. ---
      for (size_t i = 0; i < n; ++i) {
        if (claimed[i] != kOverflow) {
          table.dense[table.Rank(claimed[i])] = bt[i];
        }
      }
      perf::AccessProfile p;
      p.seq_read_bytes = build.size_bytes() * 2;
      p.rand_writes = n * 2;  // bit set + dense placement
      p.rand_write_working_set = ChtTableBytes(n);
      p.loop_iterations = n * 2;
      p.ilp = perf::IlpClass::kStreaming;
      p.cpi_hint = 3.0;
      p.software_mlp =
          config.flavor == KernelFlavor::kUnrolledReordered;
      perf::PhaseStats stats;
      stats.name = "build";
      stats.host_ns = recorder.ElapsedNs();
      stats.profile = p;
      stats.threads = 1;
      stats.inherently_serial = true;
      recorder.AddRaw(std::move(stats));
      recorder.Begin();
    });

    // --- Probe (parallel) ---
    Range s = SplitRange(probe.num_tuples(), threads, tid);
    const Tuple* pt = probe.tuples();
    uint64_t local = 0;
    if (batched) {
      std::vector<ChtProbeCursor> cursors(
          static_cast<size_t>(probe_width));
      for (auto& c : cursors) {
        c.table = &table;
        c.mat = mat;
        c.tid = tid;
      }
      exec::BatchedProbe(probe_mode, pt + s.begin, s.end - s.begin,
                         probe_width, cursors.data());
      for (const auto& c : cursors) local += c.matches;
      if (!table.overflow.empty()) {
        for (size_t i = s.begin; i < s.end; ++i) {
          auto [lo, hi] = table.overflow.equal_range(pt[i].key);
          for (auto it = lo; it != hi; ++it) {
            ++local;
            if (mat != nullptr) {
              mat->Append(tid, JoinOutputTuple{pt[i].key, it->second,
                                               pt[i].payload});
            }
          }
        }
      }
    } else {
      for (size_t i = s.begin; i < s.end; ++i) {
        const uint32_t key = pt[i].key;
        uint64_t base = SlotOf(key, table);
        for (uint32_t j = 0; j < kProbeWindow; ++j) {
          uint64_t candidate = (base + j) & table.slot_mask;
          if (!table.BitSet(candidate)) continue;
          const Tuple& entry = table.dense[table.Rank(candidate)];
          if (entry.key == key) {
            ++local;
            if (mat != nullptr) {
              mat->Append(tid, JoinOutputTuple{key, entry.payload,
                                               pt[i].payload});
            }
          }
        }
        if (!table.overflow.empty()) {
          auto [lo, hi] = table.overflow.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            ++local;
            if (mat != nullptr) {
              mat->Append(tid,
                          JoinOutputTuple{key, it->second, pt[i].payload});
            }
          }
        }
      }
    }
    matches[tid] = local;
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = probe.size_bytes();
      // Two dependent touches per probe (bitmap word, dense entry) but
      // into a table ~4x smaller than PHT's — the point of CHT.
      p.rand_reads = probe.num_tuples() * 2;
      p.rand_read_working_set = ChtTableBytes(n);
      p.loop_iterations = probe.num_tuples();
      p.ilp = perf::IlpClass::kStreaming;
      p.cpi_hint = 3.0;
      p.software_mlp =
          config.flavor == KernelFlavor::kUnrolledReordered || batched;
      // Both hops (bitmap word, dense entries) sit behind prefetches in
      // the batched drivers.
      if (batched) p.hidden_random_reads = p.rand_reads;
      recorder.End("probe", p, threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  return result;
}

}  // namespace sgxb::join
