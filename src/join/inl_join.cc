#include "join/inl_join.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "index/btree.h"
#include "join/materializer.h"

namespace sgxb::join {

Result<JoinResult> InlJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const int threads = config.num_threads;
  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;
  const exec::ProbeMode probe_mode = EffectiveProbeMode(config);
  const int probe_width = EffectiveProbeWidth(config, probe_mode);
  const bool batched = probe_mode != exec::ProbeMode::kTupleAtATime;

  index::BTree tree;
  Status build_status;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    barrier.WaitThen([&] { recorder.Begin(); });

    // --- Index build: sort (key, payload) pairs, bulk load. Serial, as
    // the index is considered pre-existing in the TEEBench setup.
    barrier.WaitThen([&] {
      std::vector<std::pair<uint32_t, uint32_t>> entries;
      entries.reserve(build.num_tuples());
      for (size_t i = 0; i < build.num_tuples(); ++i) {
        entries.emplace_back(build[i].key, build[i].payload);
      }
      std::sort(entries.begin(), entries.end());
      // Node memory comes from the join's resource, so an in-enclave
      // index build shows up in the enclave heap stats.
      auto t = index::BTree::BulkLoad(entries, EffectiveResource(config));
      if (!t.ok()) {
        build_status = t.status();
      } else {
        tree = std::move(t).value();
      }
      perf::AccessProfile p;
      p.seq_read_bytes = build.size_bytes() * 2;
      p.seq_write_bytes = tree.MemoryFootprint();
      p.loop_iterations = build.num_tuples() * 20;  // sort + load
      p.ilp = perf::IlpClass::kUnrolledReordered;
      perf::PhaseStats stats;
      stats.name = "index_build";
      stats.host_ns = recorder.ElapsedNs();
      stats.profile = p;
      stats.threads = 1;
      stats.inherently_serial = true;
      recorder.AddRaw(std::move(stats));
    });
    if (!build_status.ok()) return;

    // --- Probe: each outer tuple descends the tree. ---
    Range s = SplitRange(probe.num_tuples(), threads, tid);
    uint64_t local = 0;
    if (config.materialize) {
      Materializer* m = mat;
      local += tree.BatchForEachMatch(
          probe.tuples() + s.begin, s.end - s.begin, probe_mode,
          probe_width, [&](const Tuple& pt, uint32_t payload) {
            m->Append(tid, JoinOutputTuple{pt.key, payload, pt.payload});
          });
    } else {
      local += tree.BatchForEachMatch(
          probe.tuples() + s.begin, s.end - s.begin, probe_mode,
          probe_width, [](const Tuple&, uint32_t) {});
    }
    matches[tid] = local;
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = probe.size_bytes();
      // Each probe descends `height` levels, but the root and upper
      // inner levels stay cache-resident under repeated probing: charge
      // ~1.5 full-working-set dependent loads per probe (leaf plus an
      // occasional lower inner node).
      p.rand_reads = probe.num_tuples() + probe.num_tuples() / 2;
      p.rand_read_working_set = tree.MemoryFootprint();
      // The batched drivers interleave independent descents, so the
      // per-level loads are dependent only within one probe, not across
      // the loop — software prefetch hides them.
      p.rand_reads_dependent = !batched;
      if (batched) p.hidden_random_reads = p.rand_reads;
      p.software_mlp = batched;
      p.loop_iterations = probe.num_tuples();
      p.ilp = batched ? perf::IlpClass::kUnrolledReordered
                      : perf::IlpClass::kReferenceLoop;
      recorder.End("probe", p, threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  SGXB_RETURN_NOT_OK(build_status);
  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  return result;
}

}  // namespace sgxb::join
