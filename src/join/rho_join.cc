#include "join/rho_join.h"

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "join/materializer.h"
#include "join/radix_common.h"
#include "sgx/queue_factory.h"

namespace sgxb::join {

namespace {

struct MatCtx {
  Materializer* mat;
  int tid;
};

void EmitToMaterializer(void* ctx, const Tuple& b, const Tuple& p) {
  auto* m = static_cast<MatCtx*>(ctx);
  m->mat->Append(m->tid, JoinOutputTuple{b.key, b.payload, p.payload});
}

// One relation's partitioning state across the two passes.
struct PartitionState {
  const Tuple* input = nullptr;
  size_t n = 0;
  Tuple* pass1_out = nullptr;  // after pass 1
  Tuple* final_out = nullptr;  // after pass 2 (== pass1_out for 1 pass)
  // Pass 1: per-thread histograms and scatter offsets.
  std::vector<std::vector<uint32_t>> thread_hist;
  std::vector<std::vector<uint64_t>> thread_offsets;
  // Pass 1 partition boundaries (fanout1 + 1 entries).
  std::vector<uint64_t> p1_bounds;
  // Final partition boundaries (fanout_total + 1 entries).
  std::vector<uint64_t> final_bounds;
};

}  // namespace

Result<JoinResult> RhoJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const int threads = config.num_threads;
  const KernelFlavor flavor = config.flavor;
  const int total_bits = config.radix_bits;
  const int passes = config.radix_passes;
  const int bits1 = passes == 2 ? total_bits / 2 : total_bits;
  const int bits2 = total_bits - bits1;
  const uint32_t fanout1 = 1u << bits1;
  const uint32_t fanout2 = passes == 2 ? (1u << bits2) : 1;
  const uint32_t fanout_total = fanout1 * fanout2;
  const uint32_t mask1 = fanout1 - 1;
  const uint32_t mask2 = (fanout2 - 1) << bits1;

  // --- Allocate intermediate buffers ------------------------------------
  const size_t r_bytes = build.size_bytes();
  const size_t s_bytes = probe.size_bytes();
  JoinScratch scratch_mem(config);
  auto tmp_r = scratch_mem.Allocate(r_bytes);
  if (!tmp_r.ok()) return tmp_r.status();
  auto tmp_s = scratch_mem.Allocate(s_bytes);
  if (!tmp_s.ok()) return tmp_s.status();
  Tuple* dst_r = nullptr;
  Tuple* dst_s = nullptr;
  if (passes == 2) {
    auto d_r = scratch_mem.Allocate(r_bytes);
    if (!d_r.ok()) return d_r.status();
    auto d_s = scratch_mem.Allocate(s_bytes);
    if (!d_s.ok()) return d_s.status();
    dst_r = static_cast<Tuple*>(d_r.value());
    dst_s = static_cast<Tuple*>(d_s.value());
  }

  PartitionState R, S;
  R.input = build.tuples();
  R.n = build.num_tuples();
  R.pass1_out = static_cast<Tuple*>(tmp_r.value());
  R.final_out = passes == 2 ? dst_r : R.pass1_out;
  S.input = probe.tuples();
  S.n = probe.num_tuples();
  S.pass1_out = static_cast<Tuple*>(tmp_s.value());
  S.final_out = passes == 2 ? dst_s : S.pass1_out;

  for (PartitionState* st : {&R, &S}) {
    st->thread_hist.assign(threads, std::vector<uint32_t>(fanout1, 0));
    st->thread_offsets.assign(threads,
                              std::vector<uint64_t>(fanout1, 0));
    st->p1_bounds.assign(fanout1 + 1, 0);
    st->final_bounds.assign(fanout_total + 1, 0);
  }

  HistogramKernel hist_kernel = PickHistogramKernel(flavor);
  ScatterKernel scatter_kernel = PickScatterKernel(flavor);

  auto queue = sgx::MakeTaskQueue(config.queue, fanout_total + fanout1 + 2,
                                  config.setting);

  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  // Per-thread accumulated cycles for the build/probe split inside join
  // tasks (Figure 6 reports them as separate phases).
  std::vector<uint64_t> build_cycles(threads, 0);
  std::vector<uint64_t> probe_cycles(threads, 0);

  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    barrier.WaitThen([&] { recorder.Begin(); });

    // ================= Pass 1: histogram =================
    for (PartitionState* st : {&R, &S}) {
      Range r = SplitRange(st->n, threads, tid);
      hist_kernel(st->input + r.begin, r.size(), mask1, 0,
                  st->thread_hist[tid].data());
    }
    barrier.WaitThen([&] {
      recorder.End("hist1", HistogramProfile(R.n + S.n, bits1, flavor),
                   threads);
      // Global prefix sum and per-thread scatter offsets (serial, cheap).
      for (PartitionState* st : {&R, &S}) {
        uint64_t sum = 0;
        for (uint32_t p = 0; p < fanout1; ++p) {
          st->p1_bounds[p] = sum;
          for (int t = 0; t < threads; ++t) {
            st->thread_offsets[t][p] = sum;
            sum += st->thread_hist[t][p];
          }
        }
        st->p1_bounds[fanout1] = sum;
      }
      recorder.Begin();
    });

    // ================= Pass 1: scatter =================
    for (PartitionState* st : {&R, &S}) {
      Range r = SplitRange(st->n, threads, tid);
      scatter_kernel(st->input + r.begin, r.size(), mask1, 0,
                     st->thread_offsets[tid].data(), st->pass1_out);
    }
    barrier.WaitThen([&] {
      recorder.End("copy1",
                   ScatterProfile(R.n + S.n, bits1, r_bytes + s_bytes,
                                  flavor),
                   threads);
      if (passes == 2) {
        // Enqueue one re-partition task per pass-1 partition.
        for (uint32_t p = 0; p < fanout1; ++p) queue->Push(p);
      }
      recorder.Begin();
    });

    // ================= Pass 2 (optional) =================
    if (passes == 2) {
      std::vector<uint32_t> local_hist(fanout2);
      std::vector<uint64_t> local_off(fanout2);
      uint64_t task;
      while (queue->TryPop(&task)) {
        auto p = static_cast<uint32_t>(task);
        for (PartitionState* st : {&R, &S}) {
          const uint64_t begin = st->p1_bounds[p];
          const uint64_t end = st->p1_bounds[p + 1];
          std::fill(local_hist.begin(), local_hist.end(), 0);
          hist_kernel(st->pass1_out + begin, end - begin, mask2,
                      static_cast<uint32_t>(bits1), local_hist.data());
          uint64_t off = begin;
          for (uint32_t q = 0; q < fanout2; ++q) {
            st->final_bounds[p * fanout2 + q] = off;
            local_off[q] = off;
            off += local_hist[q];
          }
          scatter_kernel(st->pass1_out + begin, end - begin, mask2,
                         static_cast<uint32_t>(bits1), local_off.data(),
                         st->final_out);
        }
      }
      barrier.WaitThen([&] {
        recorder.End(
            "hist2+copy2",
            [&] {
              perf::AccessProfile pr =
                  HistogramProfile(R.n + S.n, bits2, flavor);
              pr.Merge(ScatterProfile(R.n + S.n, bits2,
                                      r_bytes + s_bytes, flavor));
              return pr;
            }(),
            threads);
        R.final_bounds[fanout_total] = R.n;
        S.final_bounds[fanout_total] = S.n;
        for (uint32_t q = 0; q < fanout_total; ++q) {
          queue->Push(q);
        }
        recorder.Begin();
      });
    } else {
      barrier.WaitThen([&] {
        R.final_bounds.assign(R.p1_bounds.begin(), R.p1_bounds.end());
        S.final_bounds.assign(S.p1_bounds.begin(), S.p1_bounds.end());
        for (uint32_t q = 0; q < fanout_total; ++q) {
          queue->Push(q);
        }
        recorder.Begin();
      });
    }

    // ================= Join phase =================
    InCacheJoinScratch scratch;
    uint64_t local_matches = 0;
    uint64_t bcycles = 0;
    uint64_t pcycles = 0;
    MatCtx mctx{mat, tid};
    // Well-partitioned chains are cache-resident, so batched probing is
    // opt-in for RHO (explicit config, not the flavour-derived default):
    // it pays off only when radix_bits undershoots the build size.
    const exec::ProbeMode rho_probe_mode =
        config.probe_mode.value_or(exec::ProbeMode::kTupleAtATime);
    const int rho_probe_width =
        EffectiveProbeWidth(config, rho_probe_mode);
    uint64_t task;
    while (queue->TryPop(&task)) {
      auto q = static_cast<uint32_t>(task);
      const Tuple* rp = R.final_out + R.final_bounds[q];
      size_t rn = R.final_bounds[q + 1] - R.final_bounds[q];
      const Tuple* sp = S.final_out + S.final_bounds[q];
      size_t sn = S.final_bounds[q + 1] - S.final_bounds[q];
      uint64_t t0 = ReadTsc();
      // The in-cache join runs build and probe back to back; attribute
      // the per-task time by the build/probe input ratio measured once.
      local_matches += InCachePartitionJoin(
          rp, rn, sp, sn, flavor, &scratch,
          config.materialize ? &EmitToMaterializer : nullptr,
          config.materialize ? &mctx : nullptr, rho_probe_mode,
          rho_probe_width);
      uint64_t dt = ReadTsc() - t0;
      // Split proportionally to input sizes (build touches rn tuples
      // twice — insert + chain init — probe walks sn chains).
      if (rn + sn > 0) {
        bcycles += dt * rn / (rn + sn);
        pcycles += dt * sn / (rn + sn);
      }
    }
    matches[tid] = local_matches;
    build_cycles[tid] = bcycles;
    probe_cycles[tid] = pcycles;
    barrier.WaitThen([&] {
      // The wall time since the last Begin() covers the whole join phase,
      // including task-queue waits (which is what Figure 10 stresses).
      // Split it into "build" and "probe" using the in-task cycle
      // accumulators as the ratio, as Figure 6 reports them separately.
      double wall_ns = recorder.ElapsedNs();
      uint64_t bmax = 0, pmax = 0;
      for (int t = 0; t < threads; ++t) {
        bmax = std::max(bmax, build_cycles[t]);
        pmax = std::max(pmax, probe_cycles[t]);
      }
      double ratio =
          (bmax + pmax) > 0
              ? static_cast<double>(bmax) / static_cast<double>(bmax + pmax)
              : 0.5;
      perf::AccessProfile bp;
      bp.seq_read_bytes = R.n * sizeof(Tuple);
      bp.loop_iterations = R.n;
      bp.rand_writes = R.n;
      bp.rand_write_working_set =
          (R.n / std::max<uint32_t>(1, fanout_total)) * sizeof(Tuple) * 2;
      bp.ilp = flavor == KernelFlavor::kReference
                   ? perf::IlpClass::kReferenceLoop
                   : perf::IlpClass::kUnrolledReordered;
      perf::PhaseStats bs;
      bs.name = "build";
      bs.host_ns = wall_ns * ratio;
      bs.profile = bp;
      bs.threads = threads;

      perf::AccessProfile pp;
      pp.seq_read_bytes = S.n * sizeof(Tuple);
      pp.loop_iterations = S.n;
      pp.rand_reads = S.n;
      pp.rand_read_working_set =
          (R.n / std::max<uint32_t>(1, fanout_total)) * sizeof(Tuple) * 2;
      pp.ilp = bp.ilp;
      if (config.materialize) {
        pp.seq_write_bytes = S.n * sizeof(JoinOutputTuple);
      }
      perf::PhaseStats ps;
      ps.name = "probe";
      ps.host_ns = wall_ns - bs.host_ns;
      ps.profile = pp;
      ps.threads = threads;

      recorder.AddRaw(std::move(bs));
      recorder.AddRaw(std::move(ps));
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  // `scratch_mem` releases the partition buffers (and credits enclave
  // accounting) on scope exit.
  return result;
}

}  // namespace sgxb::join
