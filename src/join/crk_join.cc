#include "join/crk_join.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "join/materializer.h"
#include "join/radix_common.h"
#include "sgx/queue_factory.h"

namespace sgxb::join {

size_t CrackPartitionStep(Tuple* data, size_t begin, size_t end,
                          uint32_t bit) {
  const uint32_t mask = 1u << bit;
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    // Advance lo past tuples already in the 0-side.
    while (lo < hi && (data[lo].key & mask) == 0) ++lo;
    // Retreat hi past tuples already in the 1-side.
    while (lo < hi && (data[hi - 1].key & mask) != 0) --hi;
    if (lo < hi) {
      Tuple tmp = data[lo];
      data[lo] = data[hi - 1];
      data[hi - 1] = tmp;
      ++lo;
      --hi;
    }
  }
  return lo;
}

namespace {

// Recursively cracks [begin, end) on bits [bit, max_bits); writes the
// partition boundaries for the covered leaf range into `bounds` starting
// at `leaf_base` (leaf order = key bits read LSB-first, identical for
// both relations, so leaf i of R pairs with leaf i of S).
void CrackRecursive(Tuple* data, size_t begin, size_t end, uint32_t bit,
                    uint32_t max_bits, uint64_t* bounds,
                    size_t leaf_base) {
  if (bit == max_bits) {
    bounds[leaf_base] = begin;
    return;
  }
  size_t mid = CrackPartitionStep(data, begin, end, bit);
  size_t half_leaves = size_t{1} << (max_bits - bit - 1);
  CrackRecursive(data, begin, mid, bit + 1, max_bits, bounds, leaf_base);
  CrackRecursive(data, mid, end, bit + 1, max_bits, bounds,
                 leaf_base + half_leaves);
}

struct MatCtx {
  Materializer* mat;
  int tid;
};

void EmitToMaterializer(void* ctx, const Tuple& b, const Tuple& p) {
  auto* m = static_cast<MatCtx*>(ctx);
  m->mat->Append(m->tid, JoinOutputTuple{b.key, b.payload, p.payload});
}

perf::AccessProfile CrackProfile(size_t n, int bits) {
  perf::AccessProfile p;
  // Each of the `bits` levels makes a full pass over the data with two
  // sequential pointers; roughly half the tuples are swapped per level.
  p.seq_read_bytes = static_cast<uint64_t>(n) * sizeof(Tuple) * bits;
  p.seq_write_bytes = static_cast<uint64_t>(n) * sizeof(Tuple) * bits / 2;
  p.loop_iterations = static_cast<uint64_t>(n) * bits;
  // The two-pointer loop's cost is dominated by the ~50% unpredictable
  // swap branch (a mispredict per other tuple), not by ILP the CPU could
  // recover through reordering — so no extra enclave-mode penalty, but a
  // high native CPI.
  p.ilp = perf::IlpClass::kStreaming;
  p.cpi_hint = 8.0;
  return p;
}

}  // namespace

Result<JoinResult> CrkJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));
  if (config.crack_bits <= 0 || config.crack_bits > 24) {
    return Status::InvalidArgument("crack_bits must be in [1, 24]");
  }

  const int threads = config.num_threads;
  const uint32_t bits = static_cast<uint32_t>(config.crack_bits);
  const size_t fanout = size_t{1} << bits;

  // Partitioning is in place, but the inputs are const: copy them into
  // working buffers first (sequential, cheap relative to cracking).
  JoinScratch scratch_mem(config);
  auto work_r = scratch_mem.Allocate(build.size_bytes());
  if (!work_r.ok()) return work_r.status();
  auto work_s = scratch_mem.Allocate(probe.size_bytes());
  if (!work_s.ok()) return work_s.status();
  Tuple* r_data = static_cast<Tuple*>(work_r.value());
  Tuple* s_data = static_cast<Tuple*>(work_s.value());
  const size_t rn = build.num_tuples();
  const size_t sn = probe.num_tuples();

  // Crack to a fixed depth d0 first (inherently serial: each binary
  // split must complete before its halves exist), creating 16 subranges
  // that are then cracked to full depth in parallel via the task queue.
  // d0 is fixed (not host-dependent) so the recorded phase structure
  // matches the algorithm's behaviour on the 16-core reference machine.
  const uint32_t d0 = std::min<uint32_t>(4, bits);
  const size_t top_parts = size_t{1} << d0;
  const size_t leaves_per_top = fanout >> d0;

  std::vector<uint64_t> r_bounds(fanout + 1, 0);
  std::vector<uint64_t> s_bounds(fanout + 1, 0);
  std::vector<uint64_t> r_top(top_parts + 1, 0);
  std::vector<uint64_t> s_top(top_parts + 1, 0);

  auto queue = sgx::MakeTaskQueue(config.queue, 2 * top_parts + fanout + 2,
                                  config.setting);

  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    barrier.WaitThen([&] { recorder.Begin(); });

    // Copy inputs into the working buffers (parallel, sequential I/O).
    {
      Range r = SplitRange(rn, threads, tid);
      std::memcpy(r_data + r.begin, build.tuples() + r.begin,
                  r.size() * sizeof(Tuple));
      Range s = SplitRange(sn, threads, tid);
      std::memcpy(s_data + s.begin, probe.tuples() + s.begin,
                  s.size() * sizeof(Tuple));
    }
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = build.size_bytes() + probe.size_bytes();
      p.seq_write_bytes = p.seq_read_bytes;
      p.loop_iterations = rn + sn;
      p.ilp = perf::IlpClass::kStreaming;
      recorder.End("copy_in", p, threads);

      // Serial top-level cracking to depth d0 (cheap: d0 passes).
      r_top[0] = 0;
      r_top[top_parts] = rn;
      s_top[0] = 0;
      s_top[top_parts] = sn;
      std::function<void(Tuple*, size_t, size_t, uint32_t, uint64_t*,
                         size_t, size_t)>
          top_crack = [&](Tuple* data, size_t begin, size_t end,
                          uint32_t bit, uint64_t* top, size_t base,
                          size_t width) {
            if (bit == d0) {
              top[base] = begin;
              return;
            }
            size_t mid = CrackPartitionStep(data, begin, end, bit);
            top_crack(data, begin, mid, bit + 1, top, base, width / 2);
            top_crack(data, mid, end, bit + 1, top, base + width / 2,
                      width / 2);
          };
      recorder.Begin();
      if (d0 > 0) {
        top_crack(r_data, 0, rn, 0, r_top.data(), 0, top_parts);
        top_crack(s_data, 0, sn, 0, s_top.data(), 0, top_parts);
      }
      // The top-level cracking is inherently serial — one of CrkJoin's
      // structural costs on many-core machines.
      perf::PhaseStats serial;
      serial.name = "crack_serial";
      serial.host_ns = recorder.ElapsedNs();
      serial.profile = CrackProfile(rn + sn, static_cast<int>(d0));
      serial.threads = 1;
      serial.inherently_serial = true;
      recorder.AddRaw(std::move(serial));
      // Tasks: crack each top partition of each relation to full depth.
      for (size_t p2 = 0; p2 < top_parts; ++p2) {
        queue->Push(p2);               // relation R task
        queue->Push(top_parts + p2);   // relation S task
      }
      recorder.Begin();
    });

    // --- Parallel cracking to full depth. ---
    {
      uint64_t task;
      while (queue->TryPop(&task)) {
        bool is_s = task >= top_parts;
        size_t p2 = is_s ? task - top_parts : task;
        Tuple* data = is_s ? s_data : r_data;
        uint64_t* top = is_s ? s_top.data() : r_top.data();
        uint64_t* bounds = is_s ? s_bounds.data() : r_bounds.data();
        CrackRecursive(data, top[p2], top[p2 + 1], d0, bits, bounds,
                       p2 * leaves_per_top);
      }
    }
    barrier.WaitThen([&] {
      perf::AccessProfile p =
          CrackProfile(rn + sn, static_cast<int>(bits - d0));
      recorder.End("crack_parallel", p, threads);
      r_bounds[fanout] = rn;
      s_bounds[fanout] = sn;
      for (size_t q = 0; q < fanout; ++q) queue->Push(q);
      recorder.Begin();
    });

    // --- Join partition pairs (same in-cache join as RHO). ---
    InCacheJoinScratch scratch;
    uint64_t local = 0;
    MatCtx mctx{mat, tid};
    uint64_t task;
    while (queue->TryPop(&task)) {
      auto q = static_cast<size_t>(task);
      local += InCachePartitionJoin(
          r_data + r_bounds[q], r_bounds[q + 1] - r_bounds[q],
          s_data + s_bounds[q], s_bounds[q + 1] - s_bounds[q],
          config.flavor, &scratch,
          config.materialize ? &EmitToMaterializer : nullptr,
          config.materialize ? &mctx : nullptr);
    }
    matches[tid] = local;
    barrier.WaitThen([&] {
      perf::AccessProfile p;
      p.seq_read_bytes = build.size_bytes() + probe.size_bytes();
      p.loop_iterations = rn + sn;
      p.rand_writes = rn;
      p.rand_write_working_set =
          (rn / fanout) * sizeof(Tuple) * 2;
      p.rand_reads = sn;
      p.rand_read_working_set = (rn / fanout) * sizeof(Tuple) * 2;
      p.ilp = config.flavor == KernelFlavor::kReference
                  ? perf::IlpClass::kReferenceLoop
                  : perf::IlpClass::kUnrolledReordered;
      recorder.End("join", p, threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  // `scratch_mem` releases the working buffers (and credits enclave
  // accounting) on scope exit.
  return result;
}

}  // namespace sgxb::join
