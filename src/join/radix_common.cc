#include "join/radix_common.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include <algorithm>
#include <limits>
#include <string>

#include "join/join_common.h"

namespace sgxb::join {

// A compiler barrier that keeps GCC from re-interleaving the index
// computations with the increments (which would undo the reordering that
// matters inside enclaves, cf. the unroll-pragma observation in 4.2).
#define SGXB_REORDER_BARRIER() asm volatile("" ::: "memory")

void HistogramReference(const Tuple* data, size_t n, uint32_t mask,
                        uint32_t shift, uint32_t* hist) {
  for (size_t i = 0; i < n; ++i) {
    size_t idx = RadixOf(data[i].key, mask, shift);
    ++hist[idx];
  }
}

void HistogramUnrolled(const Tuple* data, size_t n, uint32_t mask,
                       uint32_t shift, uint32_t* hist) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    size_t idx0 = RadixOf(data[i].key, mask, shift);
    size_t idx1 = RadixOf(data[i + 1].key, mask, shift);
    size_t idx2 = RadixOf(data[i + 2].key, mask, shift);
    size_t idx3 = RadixOf(data[i + 3].key, mask, shift);
    size_t idx4 = RadixOf(data[i + 4].key, mask, shift);
    size_t idx5 = RadixOf(data[i + 5].key, mask, shift);
    size_t idx6 = RadixOf(data[i + 6].key, mask, shift);
    size_t idx7 = RadixOf(data[i + 7].key, mask, shift);
    SGXB_REORDER_BARRIER();
    ++hist[idx0];
    ++hist[idx1];
    ++hist[idx2];
    ++hist[idx3];
    ++hist[idx4];
    ++hist[idx5];
    ++hist[idx6];
    ++hist[idx7];
  }
  for (; i < n; ++i) {
    size_t idx = RadixOf(data[i].key, mask, shift);
    ++hist[idx];
  }
}

#if defined(__AVX2__)

void HistogramSimd(const Tuple* data, size_t n, uint32_t mask,
                   uint32_t shift, uint32_t* hist) {
  // Buffer 16 bin indexes in AVX registers before issuing any increment,
  // pushing the reordering distance beyond what 8x scalar unroll reaches.
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  alignas(32) uint32_t idx[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Tuples are (key, payload) pairs: gather the keys (even lanes).
    __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));       // t0..t3
    __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i + 4));   // t4..t7
    __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i + 8));   // t8..t11
    __m256i d = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i + 12));  // t12..t15
    // Even 32-bit lanes of each 64-bit tuple are the keys.
    __m256i keys_ab = _mm256_castps_si256(_mm256_shuffle_ps(
        _mm256_castsi256_ps(a), _mm256_castsi256_ps(b),
        _MM_SHUFFLE(2, 0, 2, 0)));
    __m256i keys_cd = _mm256_castps_si256(_mm256_shuffle_ps(
        _mm256_castsi256_ps(c), _mm256_castsi256_ps(d),
        _MM_SHUFFLE(2, 0, 2, 0)));
    __m256i i_ab = _mm256_srli_epi32(_mm256_and_si256(keys_ab, vmask),
                                     static_cast<int>(shift));
    __m256i i_cd = _mm256_srli_epi32(_mm256_and_si256(keys_cd, vmask),
                                     static_cast<int>(shift));
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), i_ab);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx + 8), i_cd);
    SGXB_REORDER_BARRIER();
    for (int k = 0; k < 16; ++k) ++hist[idx[k]];
  }
  for (; i < n; ++i) {
    ++hist[RadixOf(data[i].key, mask, shift)];
  }
}

#else

void HistogramSimd(const Tuple* data, size_t n, uint32_t mask,
                   uint32_t shift, uint32_t* hist) {
  HistogramUnrolled(data, n, mask, shift, hist);
}

#endif  // __AVX2__

HistogramKernel PickHistogramKernel(KernelFlavor flavor) {
  return flavor == KernelFlavor::kReference ? &HistogramReference
                                            : &HistogramUnrolled;
}

void ScatterReference(const Tuple* data, size_t n, uint32_t mask,
                      uint32_t shift, uint64_t* offsets, Tuple* out) {
  for (size_t i = 0; i < n; ++i) {
    size_t idx = RadixOf(data[i].key, mask, shift);
    out[offsets[idx]++] = data[i];
  }
}

void ScatterUnrolled(const Tuple* data, size_t n, uint32_t mask,
                     uint32_t shift, uint64_t* offsets, Tuple* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    size_t idx0 = RadixOf(data[i].key, mask, shift);
    size_t idx1 = RadixOf(data[i + 1].key, mask, shift);
    size_t idx2 = RadixOf(data[i + 2].key, mask, shift);
    size_t idx3 = RadixOf(data[i + 3].key, mask, shift);
    size_t idx4 = RadixOf(data[i + 4].key, mask, shift);
    size_t idx5 = RadixOf(data[i + 5].key, mask, shift);
    size_t idx6 = RadixOf(data[i + 6].key, mask, shift);
    size_t idx7 = RadixOf(data[i + 7].key, mask, shift);
    SGXB_REORDER_BARRIER();
    out[offsets[idx0]++] = data[i];
    out[offsets[idx1]++] = data[i + 1];
    out[offsets[idx2]++] = data[i + 2];
    out[offsets[idx3]++] = data[i + 3];
    out[offsets[idx4]++] = data[i + 4];
    out[offsets[idx5]++] = data[i + 5];
    out[offsets[idx6]++] = data[i + 6];
    out[offsets[idx7]++] = data[i + 7];
  }
  for (; i < n; ++i) {
    size_t idx = RadixOf(data[i].key, mask, shift);
    out[offsets[idx]++] = data[i];
  }
}

ScatterKernel PickScatterKernel(KernelFlavor flavor) {
  return flavor == KernelFlavor::kReference ? &ScatterReference
                                            : &ScatterUnrolled;
}

Status ScatterBufferScratch::Reserve(int bits) {
  // The radix mask is computed over 32-bit keys and the line buffers hold
  // 2^bits * 8 tuples, so anything past 28 bits is either meaningless or
  // an overflow risk on 32-bit size_t; reject instead of wrapping.
  if (bits < 0 || bits > 28) {
    return Status::InvalidArgument(
        "ScatterBufferScratch::Reserve: bits out of range: " +
        std::to_string(bits));
  }
  const size_t fanout = size_t{1} << bits;
  if (fanout > std::numeric_limits<size_t>::max() / (8 * sizeof(Tuple))) {
    return Status::InvalidArgument(
        "ScatterBufferScratch::Reserve: buffer size overflows");
  }
  if (fill_.size() < fanout) {
    buffers_.resize(fanout * 8);
    fill_.resize(fanout);
  }
  std::fill(fill_.begin(), fill_.end(), 0);
  return Status::OK();
}

void ScatterSoftwareBuffered(const Tuple* data, size_t n, uint32_t mask,
                             uint32_t shift, uint64_t* offsets,
                             Tuple* out, ScatterBufferScratch* scratch) {
  Tuple* buffers = scratch->buffers();
  uint8_t* fill = scratch->fill();

  for (size_t i = 0; i < n; ++i) {
    const uint32_t part = RadixOf(data[i].key, mask, shift);
    Tuple* line = buffers + part * 8;
    line[fill[part]++] = data[i];
    if (fill[part] == 8) {
      // Flush a full cache line worth of tuples at once.
      Tuple* dst = out + offsets[part];
      for (int k = 0; k < 8; ++k) dst[k] = line[k];
      offsets[part] += 8;
      fill[part] = 0;
    }
  }
  // Drain partial buffers.
  const uint32_t fanout = (mask >> shift) + 1;
  for (uint32_t part = 0; part < fanout; ++part) {
    Tuple* line = buffers + static_cast<size_t>(part) * 8;
    for (uint8_t k = 0; k < fill[part]; ++k) {
      out[offsets[part]++] = line[k];
    }
    fill[part] = 0;
  }
}

// --- In-cache join -----------------------------------------------------------

size_t InCacheJoinScratch::BucketsFor(size_t n) {
  size_t buckets = 16;
  while (buckets < n) buckets <<= 1;
  return buckets;
}

void InCacheJoinScratch::Reserve(size_t n) {
  if (next_.size() < n) next_.resize(n);
  size_t buckets = BucketsFor(n);
  if (heads_cap_ < buckets) {
    heads_.resize(buckets);
    heads_cap_ = buckets;
  }
}

namespace {

constexpr uint32_t kEmpty = 0xffffffffu;

inline uint32_t BitsOf(size_t buckets) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < buckets) ++bits;
  return bits;
}

// Probe state machine over the index-linked chains: one build tuple per
// hop. Target() covers build[idx]; the chain link lives in the separate
// `links` array, so each hop prefetches its link line by hand.
struct InCacheProbeCursor {
  static constexpr int kPrefetchLines = 1;
  const Tuple* build = nullptr;
  const uint32_t* heads = nullptr;
  const uint32_t* links = nullptr;
  uint32_t bits = 0;
  MatchEmitter emit = nullptr;
  void* emit_ctx = nullptr;
  uint64_t matches = 0;

  Tuple probe_;
  uint32_t idx_ = kEmpty;

  void Reset(const Tuple& t) {
    probe_ = t;
    idx_ = heads[HashKey(t.key, bits)];
    if (idx_ != kEmpty) PrefetchRead(&links[idx_]);
  }
  const void* Target() const {
    return idx_ == kEmpty ? nullptr : &build[idx_];
  }
  void Advance() {
    if (build[idx_].key == probe_.key) {
      ++matches;
      if (emit != nullptr) emit(emit_ctx, build[idx_], probe_);
    }
    idx_ = links[idx_];
    if (idx_ != kEmpty) PrefetchRead(&links[idx_]);
  }
};

}  // namespace

uint64_t InCachePartitionJoin(const Tuple* build, size_t build_n,
                              const Tuple* probe, size_t probe_n,
                              KernelFlavor flavor,
                              InCacheJoinScratch* scratch,
                              MatchEmitter emit, void* emit_ctx,
                              exec::ProbeMode probe_mode,
                              int probe_width) {
  if (build_n == 0 || probe_n == 0) return 0;
  scratch->Reserve(build_n);
  const size_t buckets = InCacheJoinScratch::BucketsFor(build_n);
  const uint32_t bits = BitsOf(buckets);
  uint32_t* heads = scratch->bucket_heads();
  uint32_t* next = scratch->next();
  std::fill(heads, heads + buckets, kEmpty);

  // Build.
  if (flavor == KernelFlavor::kReference) {
    for (size_t i = 0; i < build_n; ++i) {
      uint32_t h = HashKey(build[i].key, bits);
      next[i] = heads[h];
      heads[h] = static_cast<uint32_t>(i);
    }
  } else {
    size_t i = 0;
    uint32_t h[8];
    for (; i + 8 <= build_n; i += 8) {
      for (int k = 0; k < 8; ++k) h[k] = HashKey(build[i + k].key, bits);
      SGXB_REORDER_BARRIER();
      for (int k = 0; k < 8; ++k) {
        next[i + k] = heads[h[k]];
        heads[h[k]] = static_cast<uint32_t>(i + k);
      }
    }
    for (; i < build_n; ++i) {
      uint32_t hh = HashKey(build[i].key, bits);
      next[i] = heads[hh];
      heads[hh] = static_cast<uint32_t>(i);
    }
  }

  // Probe.
  uint64_t matches = 0;
  if (probe_mode != exec::ProbeMode::kTupleAtATime) {
    const int w = exec::ClampProbeWidth(probe_width);
    InCacheProbeCursor cursors[exec::kMaxProbeWidth];
    for (int k = 0; k < w; ++k) {
      cursors[k].build = build;
      cursors[k].heads = heads;
      cursors[k].links = next;
      cursors[k].bits = bits;
      cursors[k].emit = emit;
      cursors[k].emit_ctx = emit_ctx;
    }
    exec::BatchedProbe(probe_mode, probe, probe_n, w, cursors);
    for (int k = 0; k < w; ++k) matches += cursors[k].matches;
    return matches;
  }
  if (flavor == KernelFlavor::kReference) {
    for (size_t j = 0; j < probe_n; ++j) {
      uint32_t key = probe[j].key;
      for (uint32_t idx = heads[HashKey(key, bits)]; idx != kEmpty;
           idx = next[idx]) {
        if (build[idx].key == key) {
          ++matches;
          if (emit != nullptr) emit(emit_ctx, build[idx], probe[j]);
        }
      }
    }
  } else {
    size_t j = 0;
    uint32_t h[8];
    for (; j + 8 <= probe_n; j += 8) {
      for (int k = 0; k < 8; ++k) h[k] = HashKey(probe[j + k].key, bits);
      SGXB_REORDER_BARRIER();
      for (int k = 0; k < 8; ++k) {
        uint32_t key = probe[j + k].key;
        for (uint32_t idx = heads[h[k]]; idx != kEmpty; idx = next[idx]) {
          if (build[idx].key == key) {
            ++matches;
            if (emit != nullptr) emit(emit_ctx, build[idx], probe[j + k]);
          }
        }
      }
    }
    for (; j < probe_n; ++j) {
      uint32_t key = probe[j].key;
      for (uint32_t idx = heads[HashKey(key, bits)]; idx != kEmpty;
           idx = next[idx]) {
        if (build[idx].key == key) {
          ++matches;
          if (emit != nullptr) emit(emit_ctx, build[idx], probe[j]);
        }
      }
    }
  }
  return matches;
}

// --- Profiles -----------------------------------------------------------------

perf::AccessProfile HistogramProfile(size_t n, int bits,
                                     KernelFlavor flavor) {
  perf::AccessProfile p;
  p.seq_read_bytes = n * sizeof(Tuple);
  p.loop_iterations = n;
  // The histogram itself is cache-resident (2^bits counters); its
  // increments are random cache writes, which are free in SGX — the
  // enclave effect on this loop is purely the ILP restriction.
  p.rand_writes = n;
  p.rand_write_working_set = (size_t{1} << bits) * sizeof(uint32_t);
  p.ilp = flavor == KernelFlavor::kReference
              ? perf::IlpClass::kReferenceLoop
              : perf::IlpClass::kUnrolledReordered;
  return p;
}

perf::AccessProfile ScatterProfile(size_t n, int bits, size_t out_bytes,
                                   KernelFlavor flavor) {
  perf::AccessProfile p;
  p.seq_read_bytes = n * sizeof(Tuple);
  p.loop_iterations = n;
  // Scatter writes land in 2^bits output streams; per stream they are
  // sequential, so the tuple traffic is modeled as streaming writes. The
  // read-modify-write offset bookkeeping hits a small cache-resident
  // array, so — like the histogram — the dominant enclave effect on this
  // loop is the ILP restriction.
  p.seq_write_bytes = n * sizeof(Tuple);
  p.rand_writes = n;
  p.rand_write_working_set = (size_t{1} << bits) * sizeof(uint64_t);
  (void)out_bytes;
  p.ilp = flavor == KernelFlavor::kReference
              ? perf::IlpClass::kReferenceLoop
              : perf::IlpClass::kUnrolledReordered;
  return p;
}

}  // namespace sgxb::join
