#include "join/pht_join.h"

#include <atomic>
#include <cassert>
#include <new>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "exec/probe_pipeline.h"
#include "join/hash_table.h"
#include "join/materializer.h"
#include "sync/spinlock.h"

namespace sgxb::join {

namespace {

// The table itself (latched build, latch-free snapshot probe, batched
// probe cursor) lives in join/hash_table.h, shared with the fused TPC-H
// pipelines.
using HashTable = BucketChainTable;

// PHT's build and probe loops walk latched bucket chains: they are
// latency-bound, not ILP-bound, so enclave mode does not add the tight-
// loop compute penalty the histogram suffers (the paper measures 95%
// relative performance for the cache-resident case, Fig. 4). What the
// unroll-and-reorder optimization restores for PHT is memory-level
// parallelism on the out-of-cache accesses (software_mlp).

perf::AccessProfile BuildProfile(size_t build_n, size_t table_bytes,
                                 KernelFlavor flavor) {
  perf::AccessProfile p;
  p.seq_read_bytes = build_n * sizeof(Tuple);
  p.rand_writes = build_n;
  p.rand_write_working_set = table_bytes;
  p.loop_iterations = build_n;
  p.ilp = perf::IlpClass::kStreaming;
  p.cpi_hint = 3.0;  // latch + chain maintenance
  p.software_mlp = flavor == KernelFlavor::kUnrolledReordered;
  return p;
}

perf::AccessProfile ProbeProfile(size_t probe_n, size_t table_bytes,
                                 KernelFlavor flavor, bool batched) {
  perf::AccessProfile p;
  p.seq_read_bytes = probe_n * sizeof(Tuple);
  p.rand_reads = probe_n;
  p.rand_read_working_set = table_bytes;
  p.rand_reads_dependent = false;  // independent probes overlap
  p.loop_iterations = probe_n;
  p.ilp = perf::IlpClass::kStreaming;
  p.cpi_hint = 2.0;
  p.software_mlp = flavor == KernelFlavor::kUnrolledReordered || batched;
  // Batched drivers keep every bucket fetch behind a software prefetch.
  if (batched) p.hidden_random_reads = probe_n;
  return p;
}

}  // namespace

size_t PhtHashTableBytes(size_t build_tuples) {
  return BucketChainTable::BytesFor(build_tuples);
}

Result<JoinResult> PhtJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const size_t table_bytes = BucketChainTable::BytesFor(build.num_tuples());

  JoinScratch scratch(config);
  auto table_buf = scratch.Allocate(table_bytes);
  if (!table_buf.ok()) return table_buf.status();

  HashTable table;
  table.Bind(table_buf.value(), build.num_tuples());
  const size_t num_buckets = table.num_buckets;

  const int threads = config.num_threads;
  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;
  const KernelFlavor flavor = config.flavor;
  const exec::ProbeMode probe_mode = EffectiveProbeMode(config);
  const int probe_width = EffectiveProbeWidth(config, probe_mode);
  const bool batched = probe_mode != exec::ProbeMode::kTupleAtATime;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    // Initialize bucket headers in parallel (part of setup, measured as
    // its own phase like the original code's allocation step).
    Range init = SplitRange(num_buckets, threads, tid);
    table.InitBuckets(init.begin, init.end);
    barrier.WaitThen([&] { recorder.Begin(); });

    // --- Build phase ---
    Range r = SplitRange(build.num_tuples(), threads, tid);
    const Tuple* bt = build.tuples();
    if (flavor == KernelFlavor::kReference) {
      for (size_t i = r.begin; i < r.end; ++i) table.Insert(bt[i]);
    } else {
      // Unrolled + reordered: compute the next 8 hashes up front, then
      // issue the inserts (same structure as Listing 2).
      size_t i = r.begin;
      for (; i + 8 <= r.end; i += 8) {
        uint32_t h[8];
        for (int k = 0; k < 8; ++k) {
          h[k] = HashKey(bt[i + k].key, table.hash_bits);
        }
        asm volatile("" ::: "memory");
        for (int k = 0; k < 8; ++k) {
          (void)h[k];
          table.Insert(bt[i + k]);
        }
      }
      for (; i < r.end; ++i) table.Insert(bt[i]);
    }
    barrier.WaitThen([&] {
      recorder.End("build",
                   BuildProfile(build.num_tuples(), table_bytes, flavor),
                   threads);
    });

    // --- Probe phase ---
    Range s = SplitRange(probe.num_tuples(), threads, tid);
    const Tuple* pt = probe.tuples();
    uint64_t local = 0;
    auto run_probe = [&](auto on_match) {
      if (!batched) {
        for (size_t j = s.begin; j < s.end; ++j) {
          local += table.ProbeBucket(HashKey(pt[j].key, table.hash_bits),
                                     pt[j], on_match);
        }
        return;
      }
      std::vector<BucketChainCursor<decltype(on_match)>> cursors(
          static_cast<size_t>(probe_width));
      for (auto& c : cursors) {
        c.table = &table;
        c.on_match = &on_match;
      }
      exec::BatchedProbe(probe_mode, pt + s.begin, s.end - s.begin,
                         probe_width, cursors.data());
      for (const auto& c : cursors) local += c.matches;
    };
    if (config.materialize) {
      Materializer* m = mat;
      run_probe([&, m](const Tuple& b, const Tuple& p) {
        m->Append(tid, JoinOutputTuple{b.key, b.payload, p.payload});
      });
    } else {
      run_probe([](const Tuple&, const Tuple&) {});
    }
    matches[tid] = local;
    barrier.WaitThen([&] {
      recorder.End("probe",
                   ProbeProfile(probe.num_tuples(), table_bytes, flavor,
                                batched),
                   threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  // `scratch` releases the hash table (and credits enclave accounting)
  // on scope exit.
  return result;
}

}  // namespace sgxb::join
