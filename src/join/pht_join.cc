#include "join/pht_join.h"

#include <atomic>
#include <cassert>
#include <new>
#include <optional>
#include <vector>

#include "common/barrier.h"
#include "common/parallel.h"
#include "exec/probe_pipeline.h"
#include "join/materializer.h"
#include "sync/spinlock.h"

namespace sgxb::join {

namespace {

// Bucket layout follows the classic multi-core hash join code: two
// in-line tuple slots, a latch for parallel builds, and an overflow link.
struct Bucket {
  SpinLock latch;
  uint32_t count;
  uint32_t next;  // index into the overflow pool, kNoOverflow if none
  Tuple tuples[2];
};
static_assert(sizeof(Bucket) <= 32, "Bucket should stay compact");

constexpr uint32_t kNoOverflow = 0xffffffffu;

size_t NumBuckets(size_t build_tuples) {
  // Average two tuples per bucket, like the original implementation.
  size_t buckets = 16;
  while (buckets * 2 < build_tuples) buckets <<= 1;
  return buckets;
}

uint32_t BitsOf(size_t pow2) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < pow2) ++bits;
  return bits;
}

struct HashTable {
  Bucket* buckets = nullptr;
  size_t num_buckets = 0;
  uint32_t hash_bits = 0;
  Bucket* overflow = nullptr;
  std::atomic<uint32_t> overflow_next{0};
  size_t overflow_cap = 0;

  // Inserts under the head bucket's latch. When the head is full its
  // contents are pushed into a fresh overflow bucket, so inserts always
  // hit the head (constant work under the latch).
  void Insert(const Tuple& t) {
    Bucket& head = buckets[HashKey(t.key, hash_bits)];
    head.latch.lock();
    if (head.count == 2) {
      uint32_t idx =
          overflow_next.fetch_add(1, std::memory_order_relaxed);
      assert(idx < overflow_cap && "PHT overflow pool exhausted");
      Bucket& spill = overflow[idx];
      spill.count = head.count;
      spill.next = head.next;
      spill.tuples[0] = head.tuples[0];
      spill.tuples[1] = head.tuples[1];
      head.next = idx;
      head.count = 0;
    }
    head.tuples[head.count++] = t;
    head.latch.unlock();
  }

  // Probes the chain starting at `buckets[bucket]` (hash hoisted to the
  // caller so batched probes compute it exactly once per tuple). The
  // probe phase is barrier-separated from the build phase, so this path
  // must never touch the latch; count/next are still snapshotted into
  // const locals before the slot scan so a bucket is read exactly once
  // per hop and a mutated head can never walk the scan out of bounds.
  template <typename OnMatch>
  uint64_t ProbeBucket(uint32_t bucket, const Tuple& t,
                       OnMatch&& on_match) const {
    uint64_t matches = 0;
    const Bucket* b = &buckets[bucket];
    for (;;) {
      const uint32_t count = b->count <= 2 ? b->count : 2;
      const uint32_t next = b->next;
      for (uint32_t i = 0; i < count; ++i) {
        if (b->tuples[i].key == t.key) {
          ++matches;
          on_match(b->tuples[i], t);
        }
      }
      if (next == kNoOverflow) break;
      assert(next < overflow_cap);
      b = &overflow[next];
    }
    return matches;
  }
};

// Probe state machine for the batched drivers (exec/probe_pipeline.h):
// one hop per Advance() — head bucket, then each overflow bucket. Buckets
// are 32 bytes in a cache-aligned array, so a hop never spans two lines.
template <typename OnMatch>
struct PhtProbeCursor {
  static constexpr int kPrefetchLines = 1;
  const HashTable* table = nullptr;
  OnMatch* on_match = nullptr;
  uint64_t matches = 0;

  Tuple probe_;
  const Bucket* b_ = nullptr;

  void Reset(const Tuple& t) {
    probe_ = t;
    b_ = &table->buckets[HashKey(t.key, table->hash_bits)];
  }
  const void* Target() const { return b_; }
  void Advance() {
    const uint32_t count = b_->count <= 2 ? b_->count : 2;
    const uint32_t next = b_->next;
    for (uint32_t i = 0; i < count; ++i) {
      if (b_->tuples[i].key == probe_.key) {
        ++matches;
        (*on_match)(b_->tuples[i], probe_);
      }
    }
    b_ = next == kNoOverflow ? nullptr : &table->overflow[next];
  }
};

// PHT's build and probe loops walk latched bucket chains: they are
// latency-bound, not ILP-bound, so enclave mode does not add the tight-
// loop compute penalty the histogram suffers (the paper measures 95%
// relative performance for the cache-resident case, Fig. 4). What the
// unroll-and-reorder optimization restores for PHT is memory-level
// parallelism on the out-of-cache accesses (software_mlp).

perf::AccessProfile BuildProfile(size_t build_n, size_t table_bytes,
                                 KernelFlavor flavor) {
  perf::AccessProfile p;
  p.seq_read_bytes = build_n * sizeof(Tuple);
  p.rand_writes = build_n;
  p.rand_write_working_set = table_bytes;
  p.loop_iterations = build_n;
  p.ilp = perf::IlpClass::kStreaming;
  p.cpi_hint = 3.0;  // latch + chain maintenance
  p.software_mlp = flavor == KernelFlavor::kUnrolledReordered;
  return p;
}

perf::AccessProfile ProbeProfile(size_t probe_n, size_t table_bytes,
                                 KernelFlavor flavor, bool batched) {
  perf::AccessProfile p;
  p.seq_read_bytes = probe_n * sizeof(Tuple);
  p.rand_reads = probe_n;
  p.rand_read_working_set = table_bytes;
  p.rand_reads_dependent = false;  // independent probes overlap
  p.loop_iterations = probe_n;
  p.ilp = perf::IlpClass::kStreaming;
  p.cpi_hint = 2.0;
  p.software_mlp = flavor == KernelFlavor::kUnrolledReordered || batched;
  // Batched drivers keep every bucket fetch behind a software prefetch.
  if (batched) p.hidden_random_reads = probe_n;
  return p;
}

}  // namespace

size_t PhtHashTableBytes(size_t build_tuples) {
  return (NumBuckets(build_tuples) + build_tuples / 2 + 16) *
         sizeof(Bucket);
}

Result<JoinResult> PhtJoin(const Relation& build, const Relation& probe,
                           const JoinConfig& config) {
  SGXB_RETURN_NOT_OK(ValidateJoinInputs(build, probe, config));

  const size_t num_buckets = NumBuckets(build.num_tuples());
  // Worst case: every insert spills once -> one overflow bucket per two
  // build tuples, plus slack.
  const size_t overflow_cap = build.num_tuples() / 2 + 16;
  const size_t table_bytes =
      (num_buckets + overflow_cap) * sizeof(Bucket);

  JoinScratch scratch(config);
  auto table_buf = scratch.Allocate(table_bytes);
  if (!table_buf.ok()) return table_buf.status();

  HashTable table;
  table.buckets = static_cast<Bucket*>(table_buf.value());
  table.num_buckets = num_buckets;
  table.hash_bits = BitsOf(num_buckets);
  table.overflow = table.buckets + num_buckets;
  table.overflow_cap = overflow_cap;

  const int threads = config.num_threads;
  Barrier barrier(threads);
  PhaseRecorder recorder;
  std::vector<uint64_t> matches(threads, 0);
  std::optional<Materializer> own_mat;
  Materializer* mat = config.output;
  if (config.materialize && mat == nullptr) {
    own_mat.emplace(threads, EffectiveResource(config),
                    Materializer::kDefaultChunkTuples, config.arena_pool);
    mat = &*own_mat;
  }
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;
  const KernelFlavor flavor = config.flavor;
  const exec::ProbeMode probe_mode = EffectiveProbeMode(config);
  const int probe_width = EffectiveProbeWidth(config, probe_mode);
  const bool batched = probe_mode != exec::ProbeMode::kTupleAtATime;

  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    // Initialize bucket headers in parallel (part of setup, measured as
    // its own phase like the original code's allocation step).
    Range init = SplitRange(num_buckets, threads, tid);
    for (size_t b = init.begin; b < init.end; ++b) {
      Bucket* bucket = new (&table.buckets[b]) Bucket();
      bucket->count = 0;
      bucket->next = kNoOverflow;
    }
    barrier.WaitThen([&] { recorder.Begin(); });

    // --- Build phase ---
    Range r = SplitRange(build.num_tuples(), threads, tid);
    const Tuple* bt = build.tuples();
    if (flavor == KernelFlavor::kReference) {
      for (size_t i = r.begin; i < r.end; ++i) table.Insert(bt[i]);
    } else {
      // Unrolled + reordered: compute the next 8 hashes up front, then
      // issue the inserts (same structure as Listing 2).
      size_t i = r.begin;
      for (; i + 8 <= r.end; i += 8) {
        uint32_t h[8];
        for (int k = 0; k < 8; ++k) {
          h[k] = HashKey(bt[i + k].key, table.hash_bits);
        }
        asm volatile("" ::: "memory");
        for (int k = 0; k < 8; ++k) {
          (void)h[k];
          table.Insert(bt[i + k]);
        }
      }
      for (; i < r.end; ++i) table.Insert(bt[i]);
    }
    barrier.WaitThen([&] {
      recorder.End("build",
                   BuildProfile(build.num_tuples(), table_bytes, flavor),
                   threads);
    });

    // --- Probe phase ---
    Range s = SplitRange(probe.num_tuples(), threads, tid);
    const Tuple* pt = probe.tuples();
    uint64_t local = 0;
    auto run_probe = [&](auto on_match) {
      if (!batched) {
        for (size_t j = s.begin; j < s.end; ++j) {
          local += table.ProbeBucket(HashKey(pt[j].key, table.hash_bits),
                                     pt[j], on_match);
        }
        return;
      }
      std::vector<PhtProbeCursor<decltype(on_match)>> cursors(
          static_cast<size_t>(probe_width));
      for (auto& c : cursors) {
        c.table = &table;
        c.on_match = &on_match;
      }
      exec::BatchedProbe(probe_mode, pt + s.begin, s.end - s.begin,
                         probe_width, cursors.data());
      for (const auto& c : cursors) local += c.matches;
    };
    if (config.materialize) {
      Materializer* m = mat;
      run_probe([&, m](const Tuple& b, const Tuple& p) {
        m->Append(tid, JoinOutputTuple{b.key, b.payload, p.payload});
      });
    } else {
      run_probe([](const Tuple&, const Tuple&) {});
    }
    matches[tid] = local;
    barrier.WaitThen([&] {
      recorder.End("probe",
                   ProbeProfile(probe.num_tuples(), table_bytes, flavor,
                                batched),
                   threads);
    });
  });
  SGXB_RETURN_NOT_OK(run_status);

  if (mat != nullptr) {
    SGXB_RETURN_NOT_OK(mat->status());
  }

  JoinResult result;
  result.phases = recorder.Take();
  result.host_ns = result.phases.TotalHostNs();
  result.threads = threads;
  for (uint64_t m : matches) result.matches += m;
  // `scratch` releases the hash table (and credits enclave accounting)
  // on scope exit.
  return result;
}

}  // namespace sgxb::join
