#include "plan/plan.h"

#include <cstdlib>
#include <sstream>

namespace sgxb::plan {

namespace {

struct ColInfo {
  TableId table;
  ColType type;
  const char* name;
};

constexpr ColInfo kColInfo[] = {
    {TableId::kCustomer, ColType::kU32, "c_custkey"},
    {TableId::kCustomer, ColType::kU8, "c_mktsegment"},
    {TableId::kOrders, ColType::kU32, "o_orderkey"},
    {TableId::kOrders, ColType::kU32, "o_custkey"},
    {TableId::kOrders, ColType::kU32, "o_orderdate"},
    {TableId::kOrders, ColType::kU8, "o_orderpriority"},
    {TableId::kLineitem, ColType::kU32, "l_orderkey"},
    {TableId::kLineitem, ColType::kU32, "l_partkey"},
    {TableId::kLineitem, ColType::kU32, "l_quantity"},
    {TableId::kLineitem, ColType::kU32, "l_extendedprice"},
    {TableId::kLineitem, ColType::kU32, "l_discount"},
    {TableId::kLineitem, ColType::kU32, "l_shipdate"},
    {TableId::kLineitem, ColType::kU32, "l_commitdate"},
    {TableId::kLineitem, ColType::kU32, "l_receiptdate"},
    {TableId::kLineitem, ColType::kU8, "l_shipmode"},
    {TableId::kLineitem, ColType::kU8, "l_shipinstruct"},
    {TableId::kLineitem, ColType::kU8, "l_returnflag"},
    {TableId::kLineitem, ColType::kU8, "l_linestatus"},
    {TableId::kPart, ColType::kU32, "p_partkey"},
    {TableId::kPart, ColType::kU32, "p_size"},
    {TableId::kPart, ColType::kU8, "p_brand"},
    {TableId::kPart, ColType::kU8, "p_container"},
};

constexpr const char* kTableNames[] = {"customer", "orders", "lineitem",
                                       "part"};

const ColInfo& InfoOf(ColId col) {
  return kColInfo[static_cast<size_t>(col)];
}

}  // namespace

TableId TableOf(ColId col) { return InfoOf(col).table; }
ColType TypeOf(ColId col) { return InfoOf(col).type; }
const char* ColName(ColId col) { return InfoOf(col).name; }
const char* TableName(TableId table) {
  return kTableNames[static_cast<size_t>(table)];
}

size_t TableRows(const tpch::TpchDbView& db, TableId table) {
  switch (table) {
    case TableId::kCustomer:
      return db.customer.num_rows;
    case TableId::kOrders:
      return db.orders.num_rows;
    case TableId::kLineitem:
      return db.lineitem.num_rows;
    case TableId::kPart:
      return db.part.num_rows;
  }
  return 0;
}

storage::ColumnView<uint32_t> U32Column(const tpch::TpchDbView& db,
                                        ColId col) {
  switch (col) {
    case ColId::kCCustkey:
      return db.customer.c_custkey;
    case ColId::kOOrderkey:
      return db.orders.o_orderkey;
    case ColId::kOCustkey:
      return db.orders.o_custkey;
    case ColId::kOOrderdate:
      return db.orders.o_orderdate;
    case ColId::kLOrderkey:
      return db.lineitem.l_orderkey;
    case ColId::kLPartkey:
      return db.lineitem.l_partkey;
    case ColId::kLQuantity:
      return db.lineitem.l_quantity;
    case ColId::kLExtendedprice:
      return db.lineitem.l_extendedprice;
    case ColId::kLDiscount:
      return db.lineitem.l_discount;
    case ColId::kLShipdate:
      return db.lineitem.l_shipdate;
    case ColId::kLCommitdate:
      return db.lineitem.l_commitdate;
    case ColId::kLReceiptdate:
      return db.lineitem.l_receiptdate;
    case ColId::kPPartkey:
      return db.part.p_partkey;
    case ColId::kPSize:
      return db.part.p_size;
    default:
      break;
  }
  std::abort();  // validated plans never bind a u8 column as u32
}

storage::ColumnView<uint8_t> U8Column(const tpch::TpchDbView& db, ColId col) {
  switch (col) {
    case ColId::kCMktsegment:
      return db.customer.c_mktsegment;
    case ColId::kOOrderpriority:
      return db.orders.o_orderpriority;
    case ColId::kLShipmode:
      return db.lineitem.l_shipmode;
    case ColId::kLShipinstruct:
      return db.lineitem.l_shipinstruct;
    case ColId::kLReturnflag:
      return db.lineitem.l_returnflag;
    case ColId::kLLinestatus:
      return db.lineitem.l_linestatus;
    case ColId::kPBrand:
      return db.part.p_brand;
    case ColId::kPContainer:
      return db.part.p_container;
    default:
      break;
  }
  std::abort();  // validated plans never bind a u32 column as u8
}

// --- Predicate ------------------------------------------------------------

Predicate Predicate::U32Range(ColId col, uint32_t lo, uint32_t hi) {
  Predicate p;
  p.kind = Kind::kU32Range;
  p.col = col;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::U8Range(ColId col, uint8_t lo, uint8_t hi) {
  Predicate p;
  p.kind = Kind::kU8Range;
  p.col = col;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::U8Eq(ColId col, uint8_t value) {
  return U8Range(col, value, value);
}

Predicate Predicate::U8InSet(ColId col, uint64_t mask) {
  Predicate p;
  p.kind = Kind::kU8InSet;
  p.col = col;
  p.mask = mask;
  return p;
}

Predicate Predicate::Less(ColId col, ColId rhs) {
  Predicate p;
  p.kind = Kind::kColLess;
  p.col = col;
  p.rhs = rhs;
  return p;
}

std::string Predicate::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kU32Range:
    case Kind::kU8Range:
      if (lo == hi) {
        os << ColName(col) << " == " << lo;
      } else {
        os << ColName(col) << " in [" << lo << ", " << hi << "]";
      }
      break;
    case Kind::kU8InSet:
      os << ColName(col) << " in mask 0x" << std::hex << mask;
      break;
    case Kind::kColLess:
      os << ColName(col) << " < " << ColName(rhs);
      break;
  }
  return os.str();
}

// --- AggSpec --------------------------------------------------------------

AggSpec AggSpec::CountStar() {
  AggSpec a;
  a.kind = Kind::kCountStar;
  return a;
}

AggSpec AggSpec::GroupCountViaFk(ColId values, ColId fk, int num_groups,
                                 std::vector<int> output_map) {
  AggSpec a;
  a.kind = Kind::kGroupCountViaFk;
  a.values = values;
  a.fk = fk;
  a.num_groups = num_groups;
  a.output_map = std::move(output_map);
  return a;
}

AggSpec AggSpec::GroupSum2(ColId value, ColId g1, int num_g1, ColId g2,
                           int num_g2) {
  AggSpec a;
  a.kind = Kind::kGroupSum2;
  a.value = value;
  a.g1 = g1;
  a.num_g1 = num_g1;
  a.g2 = g2;
  a.num_g2 = num_g2;
  return a;
}

AggSpec AggSpec::SumProduct(ColId a_col, ColId b_col) {
  AggSpec a;
  a.kind = Kind::kSumProduct;
  a.value = a_col;
  a.value2 = b_col;
  return a;
}

// --- Validation -----------------------------------------------------------

namespace {

// Max group fan-out both lowerings support with fixed-size per-lane
// aggregate state (one cache-line-friendly array per lane).
constexpr int kMaxGroups = 64;

Status CheckScanPredicate(const Predicate& p, TableId table) {
  if (TableOf(p.col) != table) {
    return Status::InvalidArgument(
        std::string("unbound column: predicate column ") + ColName(p.col) +
        " does not belong to scanned table " + TableName(table));
  }
  switch (p.kind) {
    case Predicate::Kind::kU32Range:
      if (TypeOf(p.col) != ColType::kU32) {
        return Status::InvalidArgument(
            std::string("type mismatch: u32 range over u8 column ") +
            ColName(p.col));
      }
      break;
    case Predicate::Kind::kU8Range:
    case Predicate::Kind::kU8InSet:
      if (TypeOf(p.col) != ColType::kU8) {
        return Status::InvalidArgument(
            std::string("type mismatch: u8 predicate over u32 column ") +
            ColName(p.col));
      }
      break;
    case Predicate::Kind::kColLess:
      if (TypeOf(p.col) != ColType::kU32 || TypeOf(p.rhs) != ColType::kU32) {
        return Status::InvalidArgument(
            "type mismatch: col < col requires two u32 columns");
      }
      if (TableOf(p.rhs) != table) {
        return Status::InvalidArgument(
            std::string("unbound column: comparison column ") +
            ColName(p.rhs) + " does not belong to scanned table " +
            TableName(table));
      }
      break;
  }
  return Status::OK();
}

Status CheckGroupColumn(ColId col, TableId table, int num_groups,
                        const char* role) {
  if (TableOf(col) != table) {
    return Status::InvalidArgument(std::string("unbound column: ") + role +
                                   " column " + ColName(col) +
                                   " does not belong to table " +
                                   TableName(table));
  }
  if (TypeOf(col) != ColType::kU8) {
    return Status::InvalidArgument(std::string("type mismatch: ") + role +
                                   " column " + ColName(col) +
                                   " must be a u8 code column");
  }
  if (num_groups < 1 || num_groups > kMaxGroups) {
    return Status::InvalidArgument(std::string(role) +
                                   " group count out of range [1, 64]");
  }
  return Status::OK();
}

}  // namespace

Result<Plan> Plan::FromNodes(std::vector<PlanNode> nodes, int root,
                             std::string name) {
  const int n = static_cast<int>(nodes.size());
  if (n == 0) return Status::InvalidArgument("plan has no nodes");
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("plan root id out of range");
  }
  if (nodes[static_cast<size_t>(root)].kind != PlanNode::Kind::kAggregate) {
    return Status::InvalidArgument("plan root must be an aggregate");
  }

  auto check_child = [&](int id, const char* role) -> Status {
    if (id < 0 || id >= n) {
      return Status::InvalidArgument(std::string(role) +
                                     " node id out of range");
    }
    return Status::OK();
  };

  // Iterative DFS from the root: computes each node's output table
  // bottom-up and rejects cycles (gray revisit) and DAG sharing (black
  // revisit) — a plan is a tree, so every node has at most one parent.
  std::vector<TableId> output(static_cast<size_t>(n), TableId::kCustomer);
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(static_cast<size_t>(n), Color::kWhite);

  struct Frame {
    int id;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  color[static_cast<size_t>(root)] = Color::kGray;

  auto children_of = [&](const PlanNode& node) -> std::vector<int> {
    switch (node.kind) {
      case PlanNode::Kind::kScan:
        return {};
      case PlanNode::Kind::kJoin:
        return {node.build, node.probe};
      case PlanNode::Kind::kUnionAll:
        return node.children;
      case PlanNode::Kind::kAggregate:
        return {node.input};
    }
    return {};
  };

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const PlanNode& node = nodes[static_cast<size_t>(frame.id)];
    const std::vector<int> kids = children_of(node);
    if (frame.next_child < kids.size()) {
      const int child = kids[frame.next_child++];
      const char* role =
          node.kind == PlanNode::Kind::kJoin
              ? (frame.next_child == 1 ? "join build" : "join probe")
              : (node.kind == PlanNode::Kind::kAggregate ? "aggregate input"
                                                         : "union child");
      if (Status s = check_child(child, role); !s.ok()) return s;
      switch (color[static_cast<size_t>(child)]) {
        case Color::kGray:
          return Status::InvalidArgument(
              "cyclic plan: node " + std::to_string(child) +
              " is its own ancestor");
        case Color::kBlack:
          return Status::InvalidArgument(
              "node " + std::to_string(child) +
              " has multiple parents; plans are trees");
        case Color::kWhite:
          color[static_cast<size_t>(child)] = Color::kGray;
          stack.push_back({child, 0});
          break;
      }
      continue;
    }

    // All children visited: validate this node and derive its output
    // table from the (already-finished) children.
    const size_t id = static_cast<size_t>(frame.id);
    switch (node.kind) {
      case PlanNode::Kind::kScan: {
        for (const Predicate& p : node.predicates) {
          if (Status s = CheckScanPredicate(p, node.table); !s.ok()) return s;
        }
        output[id] = node.table;
        break;
      }
      case PlanNode::Kind::kJoin: {
        const PlanNode& build = nodes[static_cast<size_t>(node.build)];
        const PlanNode& probe = nodes[static_cast<size_t>(node.probe)];
        if (build.kind == PlanNode::Kind::kAggregate ||
            probe.kind == PlanNode::Kind::kAggregate) {
          return Status::InvalidArgument(
              "join child may not be an aggregate");
        }
        if (TypeOf(node.build_key) != ColType::kU32 ||
            TypeOf(node.probe_key) != ColType::kU32) {
          return Status::InvalidArgument(
              "type mismatch: join keys must be u32 columns");
        }
        if (TableOf(node.build_key) != output[static_cast<size_t>(node.build)]) {
          return Status::InvalidArgument(
              std::string("unbound column: build key ") +
              ColName(node.build_key) +
              " does not belong to the build child's output table");
        }
        if (TableOf(node.probe_key) != output[static_cast<size_t>(node.probe)]) {
          return Status::InvalidArgument(
              std::string("unbound column: probe key ") +
              ColName(node.probe_key) +
              " does not belong to the probe child's output table");
        }
        output[id] = output[static_cast<size_t>(node.probe)];
        break;
      }
      case PlanNode::Kind::kUnionAll: {
        if (node.children.empty()) {
          return Status::InvalidArgument("union has no children");
        }
        const TableId common =
            output[static_cast<size_t>(node.children.front())];
        for (int child : node.children) {
          const PlanNode& c = nodes[static_cast<size_t>(child)];
          if (c.kind == PlanNode::Kind::kAggregate) {
            return Status::InvalidArgument(
                "union child may not be an aggregate");
          }
          if (output[static_cast<size_t>(child)] != common) {
            return Status::InvalidArgument(
                "union children must share one output table");
          }
        }
        output[id] = common;
        break;
      }
      case PlanNode::Kind::kAggregate: {
        const TableId in = output[static_cast<size_t>(node.input)];
        const AggSpec& agg = node.agg;
        switch (agg.kind) {
          case AggSpec::Kind::kCountStar:
            break;
          case AggSpec::Kind::kGroupCountViaFk: {
            if (TableOf(agg.fk) != in || TypeOf(agg.fk) != ColType::kU32) {
              return Status::InvalidArgument(
                  std::string("unbound column: group fk ") +
                  ColName(agg.fk) +
                  " must be a u32 column of the aggregate input's table");
            }
            if (Status s = CheckGroupColumn(agg.values, TableOf(agg.values),
                                            agg.num_groups, "group values");
                !s.ok()) {
              return s;
            }
            if (!agg.output_map.empty()) {
              if (agg.output_map.size() !=
                  static_cast<size_t>(agg.num_groups)) {
                return Status::InvalidArgument(
                    "output_map size must equal num_groups");
              }
              for (int slot : agg.output_map) {
                if (slot < 0 || slot >= agg.num_groups) {
                  return Status::InvalidArgument(
                      "output_map slot out of range");
                }
              }
            }
            break;
          }
          case AggSpec::Kind::kGroupSum2: {
            if (Status s = CheckGroupColumn(agg.g1, in, agg.num_g1, "group");
                !s.ok()) {
              return s;
            }
            if (Status s = CheckGroupColumn(agg.g2, in, agg.num_g2, "group");
                !s.ok()) {
              return s;
            }
            if (agg.num_g1 * agg.num_g2 > kMaxGroups) {
              return Status::InvalidArgument(
                  "group product exceeds 64 groups");
            }
            if (TableOf(agg.value) != in ||
                TypeOf(agg.value) != ColType::kU32) {
              return Status::InvalidArgument(
                  std::string("unbound column: summed value ") +
                  ColName(agg.value) +
                  " must be a u32 column of the aggregate input's table");
            }
            break;
          }
          case AggSpec::Kind::kSumProduct: {
            for (ColId c : {agg.value, agg.value2}) {
              if (TableOf(c) != in || TypeOf(c) != ColType::kU32) {
                return Status::InvalidArgument(
                    std::string("unbound column: product factor ") +
                    ColName(c) +
                    " must be a u32 column of the aggregate input's table");
              }
            }
            break;
          }
        }
        output[id] = in;
        break;
      }
    }
    color[id] = Color::kBlack;
    stack.pop_back();
  }

  Plan plan;
  plan.nodes_ = std::move(nodes);
  plan.output_table_ = std::move(output);
  plan.root_ = root;
  plan.name_ = std::move(name);
  return plan;
}

// --- ToText ---------------------------------------------------------------

namespace {

void DumpNode(const Plan& plan, int id, int depth, std::ostringstream& os) {
  const PlanNode& node = plan.node(id);
  os << std::string(static_cast<size_t>(depth) * 2, ' ') << "#" << id << " ";
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      os << "Scan(" << TableName(node.table) << ")";
      for (const Predicate& p : node.predicates) {
        os << "\n"
           << std::string(static_cast<size_t>(depth) * 2 + 4, ' ') << "where "
           << p.ToString();
      }
      os << "\n";
      break;
    }
    case PlanNode::Kind::kJoin: {
      os << "Join(" << ColName(node.build_key)
         << " == " << ColName(node.probe_key) << ")\n";
      DumpNode(plan, node.build, depth + 1, os);
      DumpNode(plan, node.probe, depth + 1, os);
      break;
    }
    case PlanNode::Kind::kUnionAll: {
      os << "UnionAll\n";
      for (int child : node.children) DumpNode(plan, child, depth + 1, os);
      break;
    }
    case PlanNode::Kind::kAggregate: {
      switch (node.agg.kind) {
        case AggSpec::Kind::kCountStar:
          os << "Aggregate(count(*))";
          break;
        case AggSpec::Kind::kGroupCountViaFk:
          os << "Aggregate(count(*) group by " << ColName(node.agg.values)
             << " via " << ColName(node.agg.fk) << ")";
          break;
        case AggSpec::Kind::kGroupSum2:
          os << "Aggregate(count, sum(" << ColName(node.agg.value)
             << ") group by " << ColName(node.agg.g1) << ", "
             << ColName(node.agg.g2) << ")";
          break;
        case AggSpec::Kind::kSumProduct:
          os << "Aggregate(sum(" << ColName(node.agg.value) << " * "
             << ColName(node.agg.value2) << "))";
          break;
      }
      os << "\n";
      DumpNode(plan, node.input, depth + 1, os);
      break;
    }
  }
}

}  // namespace

std::string Plan::ToText() const {
  std::ostringstream os;
  os << "plan " << name_ << "\n";
  if (root_ >= 0) DumpNode(*this, root_, 1, os);
  return os.str();
}

// --- PlanBuilder ----------------------------------------------------------

int PlanBuilder::Scan(TableId table, std::vector<Predicate> predicates) {
  PlanNode node;
  node.kind = PlanNode::Kind::kScan;
  node.table = table;
  node.predicates = std::move(predicates);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int PlanBuilder::Join(int build, int probe, ColId build_key,
                      ColId probe_key) {
  PlanNode node;
  node.kind = PlanNode::Kind::kJoin;
  node.build = build;
  node.probe = probe;
  node.build_key = build_key;
  node.probe_key = probe_key;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int PlanBuilder::UnionAll(std::vector<int> children) {
  PlanNode node;
  node.kind = PlanNode::Kind::kUnionAll;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int PlanBuilder::Aggregate(int input, AggSpec agg) {
  PlanNode node;
  node.kind = PlanNode::Kind::kAggregate;
  node.input = input;
  node.agg = std::move(agg);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

Result<Plan> PlanBuilder::Build(int root, std::string name) {
  return Plan::FromNodes(nodes_, root, std::move(name));
}

}  // namespace sgxb::plan
