// Logical query plans (docs/planner.md).
//
// The paper's workload layer hard-coded every query twice: a
// materializing operator-at-a-time body (tpch/queries.cc) and a
// hand-fused morsel pipeline (tpch/pipelines.cc). This layer replaces
// both with one declarative representation: an immutable tree of plan
// nodes (scan / hash-join / union-all / aggregate) over the integer
// TPC-H schema, built through PlanBuilder and validated once at
// construction. The planner (plan/planner.h) lowers a Plan to either
// execution mode, choosing join flavour, probe scheduling, and breaker
// placement from the calibrated cost model — so new queries are catalog
// entries (plan/catalog.h), not new driver code.

#ifndef SGXB_PLAN_PLAN_H_
#define SGXB_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_view.h"
#include "tpch/db_view.h"

namespace sgxb::plan {

// --- Schema binding -------------------------------------------------------
// Plans reference tables and columns by enum, not by pointer: a plan is a
// pure description, bound to an actual TpchDbView (resident or paged)
// only at execution time.

enum class TableId : uint8_t {
  kCustomer = 0,
  kOrders = 1,
  kLineitem = 2,
  kPart = 3,
};

inline constexpr int kNumTables = 4;

enum class ColType : uint8_t { kU32, kU8 };

enum class ColId : uint8_t {
  // customer
  kCCustkey = 0,
  kCMktsegment,
  // orders
  kOOrderkey,
  kOCustkey,
  kOOrderdate,
  kOOrderpriority,
  // lineitem
  kLOrderkey,
  kLPartkey,
  kLQuantity,
  kLExtendedprice,
  kLDiscount,
  kLShipdate,
  kLCommitdate,
  kLReceiptdate,
  kLShipmode,
  kLShipinstruct,
  kLReturnflag,
  kLLinestatus,
  // part
  kPPartkey,
  kPSize,
  kPBrand,
  kPContainer,
};

TableId TableOf(ColId col);
ColType TypeOf(ColId col);
const char* ColName(ColId col);
const char* TableName(TableId table);

/// \brief Row count of `table` in the bound database view.
size_t TableRows(const tpch::TpchDbView& db, TableId table);

/// \brief Binds a u32 / u8 column id to the view's ColumnView. Calling
/// with a column of the other type aborts (plans are validated, so a
/// mismatch is an executor bug, not user input).
storage::ColumnView<uint32_t> U32Column(const tpch::TpchDbView& db,
                                        ColId col);
storage::ColumnView<uint8_t> U8Column(const tpch::TpchDbView& db,
                                      ColId col);

// --- Predicates -----------------------------------------------------------

/// \brief One conjunct of a scan's selection. The four kinds mirror the
/// materializing filter/refine operators (tpch/operators.h), which is
/// exactly what both lowerings can evaluate per morsel.
struct Predicate {
  enum class Kind : uint8_t {
    kU32Range,  ///< lo <= col <= hi (u32)
    kU8Range,   ///< lo <= col <= hi (u8; SIMD row-id scan eligible)
    kU8InSet,   ///< bit col's code set in `mask` (codes < 64)
    kColLess,   ///< col < rhs (both u32, same table)
  };

  Kind kind = Kind::kU32Range;
  ColId col = ColId::kCCustkey;
  ColId rhs = ColId::kCCustkey;  ///< kColLess only
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint64_t mask = 0;  ///< kU8InSet only

  static Predicate U32Range(ColId col, uint32_t lo, uint32_t hi);
  static Predicate U8Range(ColId col, uint8_t lo, uint8_t hi);
  static Predicate U8Eq(ColId col, uint8_t value);
  static Predicate U8InSet(ColId col, uint64_t mask);
  static Predicate Less(ColId col, ColId rhs);

  /// \brief "l_shipdate in [810, 4294967295]" — for Explain dumps.
  std::string ToString() const;
};

// --- Aggregates -----------------------------------------------------------

/// \brief The plan's final operator. Mirrors the aggregate finals the
/// repo's queries use; every Plan root is exactly one of these.
struct AggSpec {
  enum class Kind : uint8_t {
    kCountStar,        ///< count(*) — the paper's final for all queries
    kGroupCountViaFk,  ///< count per values[fk[row]] (Q12Grouped-style)
    kGroupSum2,        ///< count+sum(value) per (g1, g2) (Q1-style)
    kSumProduct,       ///< sum(a * b) over qualifying rows (Q6-style)
  };

  Kind kind = Kind::kCountStar;

  // kGroupCountViaFk: group = values[fk[row]]; `values` lives on the
  // fk's target table, `fk` on the input's output table.
  ColId fk = ColId::kCCustkey;
  ColId values = ColId::kCCustkey;
  int num_groups = 0;
  /// Optional post-grouping fold: output_map[code] is the output slot of
  /// group `code` (e.g. Q12Grouped folds five order priorities into
  /// {high, low}). Empty = identity.
  std::vector<int> output_map;

  // kGroupSum2: group index = g1[row] * num_g2 + g2[row].
  ColId g1 = ColId::kCCustkey;
  ColId g2 = ColId::kCCustkey;
  int num_g1 = 0;
  int num_g2 = 0;

  // kGroupSum2's summed value / kSumProduct's two factors.
  ColId value = ColId::kCCustkey;
  ColId value2 = ColId::kCCustkey;

  static AggSpec CountStar();
  static AggSpec GroupCountViaFk(ColId values, ColId fk, int num_groups,
                                 std::vector<int> output_map = {});
  static AggSpec GroupSum2(ColId value, ColId g1, int num_g1, ColId g2,
                           int num_g2);
  static AggSpec SumProduct(ColId a, ColId b);
};

// --- Plan nodes -----------------------------------------------------------

/// \brief One node of a plan tree. Nodes are stored flat in the Plan and
/// reference children by index; the builder below is the intended way to
/// create them (hand-built vectors go through Plan::FromNodes, which
/// validates everything — including that the "tree" really is one).
struct PlanNode {
  enum class Kind : uint8_t { kScan, kJoin, kUnionAll, kAggregate };

  Kind kind = Kind::kScan;

  // kScan: conjunctive predicates over `table`'s columns.
  TableId table = TableId::kCustomer;
  std::vector<Predicate> predicates;

  // kJoin: hash equi-join build.key == probe.key. The node's output rows
  // are the matching probe-side rows (the semi-join shape every repo
  // query uses: each probe row matches at most one unique build key).
  int build = -1;
  int probe = -1;
  ColId build_key = ColId::kCCustkey;
  ColId probe_key = ColId::kCCustkey;

  // kUnionAll: disjoint branches over the same output table (Q19's three
  // brand-disjoint branches).
  std::vector<int> children;

  // kAggregate: the plan's root final.
  int input = -1;
  AggSpec agg;
};

/// \brief An immutable, validated logical plan. Construction goes through
/// PlanBuilder::Build or Plan::FromNodes; both reject malformed trees
/// (unbound predicate columns, type mismatches, cyclic or shared nodes,
/// non-aggregate roots), so executors can assume structural sanity.
class Plan {
 public:
  Plan() = default;  ///< empty (invalid) placeholder; valid() is false

  /// \brief Validates and adopts a hand-built node list. The builder API
  /// cannot produce cycles or sharing, so tests exercise those error
  /// paths through this entry point.
  static Result<Plan> FromNodes(std::vector<PlanNode> nodes, int root,
                                std::string name);

  bool valid() const { return !nodes_.empty(); }
  const std::string& name() const { return name_; }
  int root() const { return root_; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const PlanNode& node(int id) const {
    return nodes_[static_cast<size_t>(id)];
  }

  /// \brief The table whose row ids node `id` produces (scan: its table;
  /// join: the probe side's; union: the common child table; aggregate:
  /// its input's — aggregates produce scalars, not rows, but the value is
  /// still well-defined and the executors use it for sizing).
  TableId OutputTable(int id) const {
    return output_table_[static_cast<size_t>(id)];
  }

  /// \brief Indented structural dump (no costs; the planner's Explain
  /// adds per-node decisions on top of this).
  std::string ToText() const;

 private:
  std::vector<PlanNode> nodes_;
  std::vector<TableId> output_table_;
  int root_ = -1;
  std::string name_;
};

// --- Builder --------------------------------------------------------------

/// \brief Accumulates nodes and hands them to Plan::FromNodes. Node
/// methods return the new node's id for use as a child reference; errors
/// (bad child ids, type mismatches) surface from Build(), keeping the
/// construction code linear.
class PlanBuilder {
 public:
  int Scan(TableId table, std::vector<Predicate> predicates = {});
  int Join(int build, int probe, ColId build_key, ColId probe_key);
  int UnionAll(std::vector<int> children);
  int Aggregate(int input, AggSpec agg);

  /// \brief Validates and returns the finished plan.
  Result<Plan> Build(int root, std::string name);

 private:
  std::vector<PlanNode> nodes_;
};

}  // namespace sgxb::plan

#endif  // SGXB_PLAN_PLAN_H_
