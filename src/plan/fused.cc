// Generic fused lowering: compiles a Plan into a short DAG of
// RunMorselPipeline stages (docs/pipelines.md), replacing the
// hand-written per-query fused drivers. Each join becomes a build
// pipeline (drive the build subtree, insert into a pipeline-breaker
// hash table) plus a probe stage fused into its parent's pipeline; the
// root aggregate runs as a per-lane sink in the last pipeline.

#include <atomic>
#include <cctype>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"
#include "exec/pipeline.h"
#include "exec/probe_pipeline.h"
#include "join/hash_table.h"
#include "join/join_common.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "scan/scan_kernels.h"
#include "storage/column_view.h"
#include "tpch/operators.h"
#include "tune/tune.h"

namespace sgxb::plan {

namespace {

using join::BucketChainTable;
using storage::ColumnReader;
using storage::ColumnView;
using tpch::GroupAgg;
using tpch::OpRecorder;
using tpch::QueryConfig;
using tpch::QueryResult;

// Mirrors the plan validator's group-count cap; per-lane aggregate
// state is a fixed array this large.
constexpr int kMaxGroups = 64;

// A pipeline-breaker hash table plus the resource buffer backing it,
// sized for the build side's pre-filter row count (like the
// materializing operators' worst-case row-id lists).
struct FusedTable {
  AlignedBuffer buf;
  BucketChainTable table;

  Status Init(size_t capacity, const QueryConfig& config) {
    auto mem = tpch::EffectiveResource(config)->Allocate(
        BucketChainTable::BytesFor(capacity));
    if (!mem.ok()) return mem.status();
    buf = std::move(mem).value();
    table.Bind(buf.data(), capacity);
    const int threads = config.num_threads;
    return ParallelRun(threads, [&](int tid) {
      Range r = SplitRange(table.num_buckets, threads, tid);
      table.InitBuckets(r.begin, r.end);
    });
  }
};

// sigma(lo <= col <= hi) over [r.begin, r.end), branchless; writes
// absolute row ids. Paged views pin one partition run at a time.
Result<size_t> FilterU32Morsel(const ColumnView<uint32_t>& col, Range r,
                               uint32_t lo, uint32_t hi, uint64_t* out) {
  size_t k = 0;
  SGXB_RETURN_NOT_OK(storage::ForEachRun(
      col, r.begin, r.end,
      [&](const uint32_t* run, size_t base, size_t n) {
        for (size_t j = 0; j < n; ++j) {
          out[k] = base + j;
          k += (run[j] >= lo && run[j] <= hi) ? 1 : 0;
        }
      }));
  return k;
}

// SIMD u8 range scan over a morsel (kernel picked once per query).
Result<size_t> ScanU8Morsel(const ColumnView<uint8_t>& col, Range r,
                            uint8_t lo, uint8_t hi, uint64_t* out,
                            scan::RowIdKernel kernel) {
  size_t k = 0;
  SGXB_RETURN_NOT_OK(storage::ForEachRun(
      col, r.begin, r.end,
      [&](const uint8_t* run, size_t base, size_t n) {
        k += kernel(run, n, lo, hi, base, out + k);
      }));
  return k;
}

template <typename Pred>
size_t RefineMorsel(const uint64_t* in, size_t n, uint64_t* out,
                    Pred pred) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = in[i];
    out[k] = id;
    k += pred(id) ? 1 : 0;
  }
  return k;
}

void StageTuples(ColumnReader<uint32_t>& keys, const uint64_t* ids,
                 size_t n, Tuple* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i].key = keys[ids[i]];
    out[i].payload = static_cast<uint32_t>(ids[i]);
  }
}

template <typename OnMatch>
void ProbeStaged(const BucketChainTable& table, const Tuple* staged,
                 size_t n, exec::ProbeMode mode, int width,
                 OnMatch& on_match) {
  if (mode == exec::ProbeMode::kTupleAtATime) {
    for (size_t i = 0; i < n; ++i) {
      table.ProbeBucket(table.HashOf(staged[i].key), staged[i], on_match);
    }
    return;
  }
  join::BucketChainCursor<OnMatch> cursors[exec::kMaxProbeWidth];
  for (int i = 0; i < width; ++i) {
    cursors[i].table = &table;
    cursors[i].on_match = &on_match;
  }
  exec::BatchedProbe(mode, staged, n, width, cursors);
}

Result<double> RunPipe(const std::string& span_name, size_t total,
                       const QueryConfig& config, tune::QueryTuner* tuner,
                       const exec::MorselBody& body) {
  exec::PipelineConfig pc;
  pc.name = span_name.c_str();
  pc.num_threads = config.num_threads;
  pc.enclave_lanes = config.setting != ExecutionSetting::kPlainCpu;
  pc.resource = tpch::EffectiveResource(config);
  pc.arena_pool = config.arena_pool;
  if (tuner != nullptr) {
    // Adaptive: start at the tuner's grain and let its wave controller
    // re-grain between waves. Without a tuner the pipeline keeps the
    // single historical parallel loop.
    pc.grain = tuner->chosen().morsel_grain;
    pc.wave_controller = tuner->MakeWaveController();
  }
  WallTimer timer;
  Status s = exec::RunMorselPipeline(total, pc, body);
  if (!s.ok()) return s;
  return static_cast<double>(timer.ElapsedNanos());
}

// Fused-probe traffic counters, read back per feedback frame by the
// adaptive controller (obs/feedback.h).
obs::Counter* CtrProbeTuples() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrProbeTuples);
  return c;
}
obs::Counter* CtrProbeMatches() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrProbeMatches);
  return c;
}

perf::AccessProfile PipeProfile(size_t seq_read_bytes, size_t rows,
                                uint64_t probes, size_t probe_ws,
                                bool batched, uint64_t sink_rows,
                                size_t sink_ws) {
  perf::AccessProfile p;
  p.seq_read_bytes = seq_read_bytes;
  p.loop_iterations = rows;
  p.ilp = perf::IlpClass::kUnrolledReordered;
  if (probes > 0) {
    p.rand_reads = probes;
    p.rand_read_working_set = probe_ws;
    if (batched) p.hidden_random_reads = probes;
    p.software_mlp = batched;
  }
  if (sink_rows > 0) {
    p.rand_writes = sink_rows;
    p.rand_write_working_set = sink_ws;
    p.seq_write_bytes = sink_rows * sizeof(Tuple);
  }
  return p;
}

// Padded per-lane aggregation state so lanes never false-share.
template <typename T>
struct alignas(kCacheLineSize) LaneSlot {
  T value{};
};

// A fused stage's consumer: receives the surviving row ids of the
// subtree's output table, morsel by morsel (possibly several flushes
// per morsel when a probe overflows the lane's selection buffer).
using MorselSink =
    std::function<Status(exec::PipelineLane&, const uint64_t*, size_t)>;

class FusedExec {
 public:
  FusedExec(const Plan& plan, const tpch::TpchDbView& db,
            const QueryConfig& config, const PlanDecisions& dec)
      : plan_(plan),
        db_(db),
        config_(config),
        dec_(dec),
        mode_(dec.probe_mode),
        width_(dec.probe_batch),
        batched_(dec.probe_mode != exec::ProbeMode::kTupleAtATime),
        tuner_(dec.tuner),
        kernel_(scan::PickRowIdKernel(SimdLevel::kAvx512)),
        tables_(plan.nodes().size()) {
    prefix_ = plan.name();
    for (char& c : prefix_) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }

  Result<QueryResult> Run();

 private:
  // Builds (and fills) the breaker hash table of every join in the
  // subtree, bottom-up: inner joins' tables fill first so an outer
  // build pipeline can probe them.
  Status PrepareTables(int id, const std::string& suffix);

  // Runs the subtree as one pipeline (scans and probes fused), feeding
  // surviving row ids to `sink`. `role` names the pipeline ("build",
  // "probe", or the root aggregate's verb).
  Status DriveSubtree(int id, const std::string& role,
                      const std::string& suffix, const MorselSink& sink,
                      std::atomic<uint64_t>* sink_rows, size_t sink_ws);
  Status DriveScan(int id, const std::string& name, const MorselSink& sink,
                   std::atomic<uint64_t>* sink_rows, size_t sink_ws);
  Status DriveJoin(int id, const std::string& name, const MorselSink& sink,
                   std::atomic<uint64_t>* sink_rows, size_t sink_ws);

  // Applies a scan node's predicate chain to one morsel; the surviving
  // ids end up in lane.sel_out().
  Result<size_t> ApplyPreds(const PlanNode& n, Range r,
                            exec::PipelineLane& lane);

  size_t PredBytes(const PlanNode& n) const {
    size_t bytes = 0;
    for (const Predicate& p : n.predicates) {
      const size_t rows = TableRows(db_, n.table);
      bytes += rows * (TypeOf(p.col) == ColType::kU32 ? 4 : 1);
      if (p.kind == Predicate::Kind::kColLess) bytes += rows * 4;
    }
    return bytes;
  }

  const Plan& plan_;
  const tpch::TpchDbView& db_;
  const QueryConfig& config_;
  const PlanDecisions& dec_;
  const exec::ProbeMode mode_;
  const int width_;
  const bool batched_;
  tune::QueryTuner* const tuner_;
  const scan::RowIdKernel kernel_;
  std::vector<FusedTable> tables_;
  std::string prefix_;
  OpRecorder rec_;
};

Result<size_t> FusedExec::ApplyPreds(const PlanNode& n, Range r,
                                     exec::PipelineLane& lane) {
  uint64_t* sel = lane.sel_out();
  size_t k = 0;
  size_t next = 0;
  if (n.predicates.empty()) {
    for (size_t i = r.begin; i < r.end; ++i) sel[k++] = i;
  } else {
    const Predicate& p = n.predicates[0];
    switch (p.kind) {
      case Predicate::Kind::kU32Range: {
        auto f = FilterU32Morsel(U32Column(db_, p.col), r, p.lo, p.hi, sel);
        if (!f.ok()) return f.status();
        k = f.value();
        next = 1;
        break;
      }
      case Predicate::Kind::kU8Range: {
        auto f = ScanU8Morsel(U8Column(db_, p.col), r,
                              static_cast<uint8_t>(p.lo),
                              static_cast<uint8_t>(p.hi), sel, kernel_);
        if (!f.ok()) return f.status();
        k = f.value();
        next = 1;
        break;
      }
      default:
        // kU8InSet / kColLess have no direct scan form: start from the
        // full morsel and refine below.
        for (size_t i = r.begin; i < r.end; ++i) sel[k++] = i;
        break;
    }
  }
  for (size_t pi = next; pi < n.predicates.size(); ++pi) {
    const Predicate& p = n.predicates[pi];
    lane.FlipSel();
    switch (p.kind) {
      case Predicate::Kind::kU32Range: {
        ColumnReader<uint32_t> c(U32Column(db_, p.col));
        k = RefineMorsel(lane.sel_in(), k, lane.sel_out(),
                         [&](uint64_t id) {
                           return c[id] >= p.lo && c[id] <= p.hi;
                         });
        SGXB_RETURN_NOT_OK(c.status());
        break;
      }
      case Predicate::Kind::kU8Range: {
        ColumnReader<uint8_t> c(U8Column(db_, p.col));
        k = RefineMorsel(lane.sel_in(), k, lane.sel_out(),
                         [&](uint64_t id) {
                           return c[id] >= p.lo && c[id] <= p.hi;
                         });
        SGXB_RETURN_NOT_OK(c.status());
        break;
      }
      case Predicate::Kind::kU8InSet: {
        ColumnReader<uint8_t> c(U8Column(db_, p.col));
        k = RefineMorsel(lane.sel_in(), k, lane.sel_out(),
                         [&](uint64_t id) {
                           return ((p.mask >> c[id]) & 1u) != 0;
                         });
        SGXB_RETURN_NOT_OK(c.status());
        break;
      }
      case Predicate::Kind::kColLess: {
        ColumnReader<uint32_t> a(U32Column(db_, p.col));
        ColumnReader<uint32_t> b(U32Column(db_, p.rhs));
        k = RefineMorsel(lane.sel_in(), k, lane.sel_out(),
                         [&](uint64_t id) { return a[id] < b[id]; });
        SGXB_RETURN_NOT_OK(a.status());
        SGXB_RETURN_NOT_OK(b.status());
        break;
      }
    }
  }
  return k;
}

Status FusedExec::DriveScan(int id, const std::string& name,
                            const MorselSink& sink,
                            std::atomic<uint64_t>* sink_rows,
                            size_t sink_ws) {
  const PlanNode& n = plan_.node(id);
  const size_t total = TableRows(db_, n.table);
  std::atomic<uint64_t> sel_rows{0};
  auto ns = RunPipe(name, total, config_, tuner_,
                    [&](Range r, exec::PipelineLane& lane) -> Status {
                      auto k = ApplyPreds(n, r, lane);
                      if (!k.ok()) return k.status();
                      sel_rows.fetch_add(k.value(),
                                         std::memory_order_relaxed);
                      return sink(lane, lane.sel_out(), k.value());
                    });
  if (!ns.ok()) return ns.status();
  const size_t seq = PredBytes(n) == 0 ? total * sizeof(uint32_t)
                                       : PredBytes(n);
  rec_.Record(name, ns.value(),
              PipeProfile(seq, total, 0, 0, batched_,
                          sink_rows ? sink_rows->load() : 0, sink_ws),
              config_.num_threads);
  return Status::OK();
}

Status FusedExec::DriveJoin(int id, const std::string& name,
                            const MorselSink& sink,
                            std::atomic<uint64_t>* sink_rows,
                            size_t sink_ws) {
  const PlanNode& n = plan_.node(id);
  const PlanNode& probe_scan = plan_.node(n.probe);
  const FusedTable& tbl = tables_[static_cast<size_t>(id)];
  const size_t total = TableRows(db_, probe_scan.table);
  const ColumnView<uint32_t> pkey = U32Column(db_, n.probe_key);
  std::atomic<uint64_t> sel_rows{0};
  auto ns = RunPipe(
      name, total, config_, tuner_,
      [&](Range r, exec::PipelineLane& lane) -> Status {
        auto filtered = ApplyPreds(probe_scan, r, lane);
        if (!filtered.ok()) return filtered.status();
        const size_t k = filtered.value();
        ColumnReader<uint32_t> pkey_r(pkey);
        StageTuples(pkey_r, lane.sel_out(), k, lane.stage());
        lane.FlipSel();
        uint64_t* out = lane.sel_out();
        const size_t cap = lane.capacity();
        size_t m = 0;
        size_t matched = 0;
        Status sink_status = Status::OK();
        auto on_match = [&](const Tuple&, const Tuple& probe) {
          out[m++] = probe.payload;
          ++matched;
          if (m == cap) {
            Status s = sink(lane, out, m);
            if (!s.ok() && sink_status.ok()) sink_status = std::move(s);
            m = 0;
          }
        };
        // Re-read the knobs per morsel: with a tuner, a mid-query
        // guardrail switch takes effect at the next morsel boundary
        // (same matches either way — only the load schedule changes).
        const exec::ProbeMode mode =
            tuner_ != nullptr ? tuner_->live().Mode() : mode_;
        const int width = tuner_ != nullptr
                              ? exec::ClampProbeWidth(tuner_->live().Batch())
                              : width_;
        ProbeStaged(tbl.table, lane.stage(), k, mode, width, on_match);
        if (m > 0) {
          Status s = sink(lane, out, m);
          if (!s.ok() && sink_status.ok()) sink_status = std::move(s);
        }
        if (k > 0) CtrProbeTuples()->Add(k);
        if (matched > 0) CtrProbeMatches()->Add(matched);
        sel_rows.fetch_add(k, std::memory_order_relaxed);
        SGXB_RETURN_NOT_OK(sink_status);
        return pkey_r.status();
      });
  if (!ns.ok()) return ns.status();
  rec_.Record(name, ns.value(),
              PipeProfile(PredBytes(probe_scan) +
                              sel_rows.load() * sizeof(uint32_t),
                          total, sel_rows.load(), tbl.buf.size(), batched_,
                          sink_rows ? sink_rows->load() : 0, sink_ws),
              config_.num_threads);
  return Status::OK();
}

Status FusedExec::DriveSubtree(int id, const std::string& role,
                               const std::string& suffix,
                               const MorselSink& sink,
                               std::atomic<uint64_t>* sink_rows,
                               size_t sink_ws) {
  const PlanNode& n = plan_.node(id);
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      return DriveScan(id,
                       prefix_ + "." + role + "_" + TableName(n.table) +
                           suffix,
                       sink, sink_rows, sink_ws);
    case PlanNode::Kind::kJoin:
      return DriveJoin(
          id,
          prefix_ + "." + role + "_" +
              TableName(plan_.node(n.probe).table) + suffix,
          sink, sink_rows, sink_ws);
    case PlanNode::Kind::kUnionAll: {
      int branch = 0;
      for (int c : n.children) {
        SGXB_RETURN_NOT_OK(
            DriveSubtree(c, role, suffix + "_b" + std::to_string(++branch),
                         sink, sink_rows, sink_ws));
      }
      return Status::OK();
    }
    case PlanNode::Kind::kAggregate:
      break;
  }
  return Status::Internal("DriveSubtree reached an aggregate node");
}

Status FusedExec::PrepareTables(int id, const std::string& suffix) {
  const PlanNode& n = plan_.node(id);
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      return Status::OK();
    case PlanNode::Kind::kAggregate:
      return PrepareTables(n.input, suffix);
    case PlanNode::Kind::kUnionAll: {
      int branch = 0;
      for (int c : n.children) {
        SGXB_RETURN_NOT_OK(
            PrepareTables(c, suffix + "_b" + std::to_string(++branch)));
      }
      return Status::OK();
    }
    case PlanNode::Kind::kJoin: {
      // Inner joins first: this join's build pipeline may probe them.
      SGXB_RETURN_NOT_OK(PrepareTables(n.build, suffix));
      FusedTable& tbl = tables_[static_cast<size_t>(id)];
      SGXB_RETURN_NOT_OK(
          tbl.Init(TableRows(db_, plan_.OutputTable(n.build)), config_));
      const ColumnView<uint32_t> bkey = U32Column(db_, n.build_key);
      std::atomic<uint64_t> inserted{0};
      MorselSink insert_sink =
          [&](exec::PipelineLane&, const uint64_t* ids,
              size_t cnt) -> Status {
        ColumnReader<uint32_t> key(bkey);
        for (size_t i = 0; i < cnt; ++i) {
          tbl.table.Insert(
              Tuple{key[ids[i]], static_cast<uint32_t>(ids[i])});
        }
        inserted.fetch_add(cnt, std::memory_order_relaxed);
        return key.status();
      };
      SGXB_RETURN_NOT_OK(DriveSubtree(n.build, "build", suffix,
                                      insert_sink, &inserted,
                                      tbl.buf.size()));
      tpch::ChargeBytesMaterialized(inserted.load() * sizeof(Tuple));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable plan node kind");
}

Result<QueryResult> FusedExec::Run() {
  WallTimer timer;
  SGXB_RETURN_NOT_OK(PrepareTables(plan_.root(), ""));

  const PlanNode& root = plan_.node(plan_.root());
  const AggSpec& agg = root.agg;
  const PlanNode& in = plan_.node(root.input);
  const size_t lanes = static_cast<size_t>(config_.num_threads);
  QueryResult result;

  // The root pipeline's verb: probe when a join/union drives it, the
  // aggregate's own verb over a bare scan (q1.group_lineitem style).
  auto role_for = [&](const char* scan_verb) {
    return in.kind == PlanNode::Kind::kScan ? std::string(scan_verb)
                                            : std::string("probe");
  };

  switch (agg.kind) {
    case AggSpec::Kind::kCountStar: {
      std::vector<LaneSlot<uint64_t>> counts(lanes);
      MorselSink sink = [&](exec::PipelineLane& lane, const uint64_t*,
                            size_t cnt) -> Status {
        counts[static_cast<size_t>(lane.lane_id())].value += cnt;
        return Status::OK();
      };
      SGXB_RETURN_NOT_OK(
          DriveSubtree(root.input, role_for("count"), "", sink, nullptr, 0));
      for (const auto& slot : counts) result.count += slot.value;
      break;
    }
    case AggSpec::Kind::kGroupCountViaFk: {
      struct Counts {
        uint64_t c[kMaxGroups] = {};
      };
      std::vector<LaneSlot<Counts>> lane_counts(lanes);
      std::atomic<bool> out_of_range{false};
      const ColumnView<uint32_t> fk_col = U32Column(db_, agg.fk);
      const ColumnView<uint8_t> val_col = U8Column(db_, agg.values);
      MorselSink sink = [&](exec::PipelineLane& lane, const uint64_t* ids,
                            size_t cnt) -> Status {
        ColumnReader<uint32_t> fk(fk_col);
        ColumnReader<uint8_t> vals(val_col);
        uint64_t* c =
            lane_counts[static_cast<size_t>(lane.lane_id())].value.c;
        for (size_t i = 0; i < cnt; ++i) {
          const uint8_t g = vals[fk[ids[i]]];
          if (g >= agg.num_groups) {
            out_of_range.store(true, std::memory_order_relaxed);
            break;
          }
          ++c[g];
        }
        SGXB_RETURN_NOT_OK(fk.status());
        return vals.status();
      };
      SGXB_RETURN_NOT_OK(
          DriveSubtree(root.input, role_for("group"), "", sink, nullptr,
                       val_col.size_bytes()));
      if (out_of_range.load()) {
        return Status::Internal("group code out of range in " + prefix_ +
                                " grouped aggregate");
      }
      std::vector<uint64_t> raw(static_cast<size_t>(agg.num_groups), 0);
      for (const auto& slot : lane_counts) {
        for (int g = 0; g < agg.num_groups; ++g) {
          raw[static_cast<size_t>(g)] += slot.value.c[g];
        }
      }
      if (agg.output_map.empty()) {
        result.group_counts = raw;
      } else {
        int slots = 0;
        for (int m : agg.output_map) slots = std::max(slots, m + 1);
        result.group_counts.assign(static_cast<size_t>(slots), 0);
        for (size_t g = 0; g < raw.size(); ++g) {
          result.group_counts[static_cast<size_t>(agg.output_map[g])] +=
              raw[g];
        }
      }
      for (uint64_t c : result.group_counts) result.count += c;
      break;
    }
    case AggSpec::Kind::kGroupSum2: {
      struct Aggs {
        GroupAgg g[kMaxGroups] = {};
      };
      std::vector<LaneSlot<Aggs>> lane_aggs(lanes);
      std::atomic<bool> out_of_range{false};
      const int num_groups = agg.num_g1 * agg.num_g2;
      const ColumnView<uint32_t> val_col = U32Column(db_, agg.value);
      const ColumnView<uint8_t> g1_col = U8Column(db_, agg.g1);
      const ColumnView<uint8_t> g2_col = U8Column(db_, agg.g2);
      MorselSink sink = [&](exec::PipelineLane& lane, const uint64_t* ids,
                            size_t cnt) -> Status {
        ColumnReader<uint32_t> val(val_col);
        ColumnReader<uint8_t> g1(g1_col);
        ColumnReader<uint8_t> g2(g2_col);
        GroupAgg* groups =
            lane_aggs[static_cast<size_t>(lane.lane_id())].value.g;
        for (size_t i = 0; i < cnt; ++i) {
          const uint64_t id = ids[i];
          const uint8_t a = g1[id];
          const uint8_t b = g2[id];
          if (a >= agg.num_g1 || b >= agg.num_g2) {
            out_of_range.store(true, std::memory_order_relaxed);
            break;
          }
          GroupAgg& g = groups[a * agg.num_g2 + b];
          ++g.count;
          g.sum += val[id];
        }
        SGXB_RETURN_NOT_OK(val.status());
        SGXB_RETURN_NOT_OK(g1.status());
        return g2.status();
      };
      SGXB_RETURN_NOT_OK(
          DriveSubtree(root.input, role_for("group"), "", sink, nullptr,
                       static_cast<size_t>(num_groups) * sizeof(GroupAgg)));
      if (out_of_range.load()) {
        return Status::Internal("group code out of range in " + prefix_ +
                                " grouped aggregate");
      }
      for (int g = 0; g < num_groups; ++g) {
        uint64_t count = 0;
        for (const auto& slot : lane_aggs) count += slot.value.g[g].count;
        result.group_counts.push_back(count);
        result.count += count;
      }
      break;
    }
    case AggSpec::Kind::kSumProduct: {
      struct Sums {
        uint64_t sum = 0;
        uint64_t rows = 0;
      };
      std::vector<LaneSlot<Sums>> lane_sums(lanes);
      const ColumnView<uint32_t> a_col = U32Column(db_, agg.value);
      const ColumnView<uint32_t> b_col = U32Column(db_, agg.value2);
      MorselSink sink = [&](exec::PipelineLane& lane, const uint64_t* ids,
                            size_t cnt) -> Status {
        ColumnReader<uint32_t> a(a_col);
        ColumnReader<uint32_t> b(b_col);
        uint64_t local = 0;
        for (size_t i = 0; i < cnt; ++i) {
          const uint64_t id = ids[i];
          local += static_cast<uint64_t>(a[id]) * b[id];
        }
        Sums& s = lane_sums[static_cast<size_t>(lane.lane_id())].value;
        s.sum += local;
        s.rows += cnt;
        SGXB_RETURN_NOT_OK(a.status());
        return b.status();
      };
      SGXB_RETURN_NOT_OK(
          DriveSubtree(root.input, role_for("sum"), "", sink, nullptr, 0));
      uint64_t sum = 0;
      for (const auto& slot : lane_sums) {
        sum += slot.value.sum;
        result.count += slot.value.rows;
      }
      result.group_counts = {sum};
      break;
    }
  }

  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec_.Take();
  return result;
}

}  // namespace

Result<QueryResult> ExecuteFused(const Plan& plan,
                                 const tpch::TpchDbView& db,
                                 const QueryConfig& config,
                                 const PlanDecisions& decisions) {
  if (!FusedLowerable(plan)) {
    return Status::InvalidArgument(
        "plan has a join probing a non-scan; fused lowering requires "
        "scan probe children");
  }
  FusedExec exec(plan, db, config, decisions);
  return exec.Run();
}

}  // namespace sgxb::plan
