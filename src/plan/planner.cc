#include "plan/planner.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "join/cht_join.h"
#include "join/hash_table.h"
#include "join/pht_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/cost_model.h"
#include "tpch/operators.h"
#include "tune/tune.h"

namespace sgxb::plan {

namespace {

using tpch::QueryConfig;
using tpch::QueryResult;
using tpch::RowIdList;

size_t ColWidth(ColId col) {
  return TypeOf(col) == ColType::kU32 ? sizeof(uint32_t) : sizeof(uint8_t);
}

int PopCount(uint64_t v) {
  int n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

// --- Cardinality priors ---------------------------------------------------
// Fixed selectivity priors per predicate shape. The repo has no column
// statistics (the generator's distributions are uniform), so the priors
// only need to rank alternatives sanely, not predict row counts exactly.

double Selectivity(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kU32Range:
      return p.lo == p.hi ? 0.05 : 0.3;
    case Predicate::Kind::kU8Range:
      return p.lo == p.hi ? 1.0 / 16.0 : 0.2;
    case Predicate::Kind::kU8InSet:
      return std::min(1.0, PopCount(p.mask) / 16.0);
    case Predicate::Kind::kColLess:
      return 0.5;
  }
  return 1.0;
}

void EstimateRows(const Plan& plan, const tpch::TpchDbView& db, int id,
                  std::vector<double>* est) {
  const PlanNode& n = plan.node(id);
  double rows = 0;
  switch (n.kind) {
    case PlanNode::Kind::kScan: {
      rows = static_cast<double>(TableRows(db, n.table));
      for (const Predicate& p : n.predicates) rows *= Selectivity(p);
      break;
    }
    case PlanNode::Kind::kJoin: {
      EstimateRows(plan, db, n.build, est);
      EstimateRows(plan, db, n.probe, est);
      // Semi-join shape: a probe row survives iff its key hits the build
      // side, so the join selects the build side's surviving fraction of
      // the probe rows.
      const double build_table = static_cast<double>(
          std::max<size_t>(TableRows(db, plan.OutputTable(n.build)), 1));
      const double build_frac =
          std::min(1.0, (*est)[static_cast<size_t>(n.build)] / build_table);
      rows = (*est)[static_cast<size_t>(n.probe)] * build_frac;
      break;
    }
    case PlanNode::Kind::kUnionAll: {
      for (int c : n.children) {
        EstimateRows(plan, db, c, est);
        rows += (*est)[static_cast<size_t>(c)];
      }
      break;
    }
    case PlanNode::Kind::kAggregate: {
      EstimateRows(plan, db, n.input, est);
      rows = (*est)[static_cast<size_t>(n.input)];
      break;
    }
  }
  (*est)[static_cast<size_t>(id)] = rows;
}

// --- Join flavour costing -------------------------------------------------
// One AccessProfile per flavour, shaped like the profiles the joins
// themselves record: RHO pays two streaming partition passes and probes
// cache-resident partitions; PHT builds and probes one shared table whose
// working set is the whole table; CHT is PHT with a second build pass and
// a smaller (concise) table.

perf::ExecutionEnv EnvOf(const QueryConfig& config) {
  perf::ExecutionEnv env;
  env.setting = config.setting;
  env.threads = config.num_threads;
  return env;
}

perf::AccessProfile JoinProfile(join::JoinAlgorithm algo, double build_rows,
                                double probe_rows, bool batched) {
  const auto b = static_cast<uint64_t>(std::max(build_rows, 1.0));
  const auto pr = static_cast<uint64_t>(std::max(probe_rows, 1.0));
  perf::AccessProfile p;
  p.ilp = perf::IlpClass::kUnrolledReordered;
  switch (algo) {
    case join::JoinAlgorithm::kRho: {
      const uint64_t tuples = b + pr;
      p.seq_read_bytes = 2 * tuples * sizeof(Tuple);
      p.seq_write_bytes = 2 * tuples * sizeof(Tuple);
      p.rand_reads = pr;
      p.rand_read_working_set = std::min<size_t>(
          join::BucketChainTable::BytesFor(b), size_t{256} * 1024);
      p.hidden_random_reads = pr;  // partition fits cache after the passes
      p.loop_iterations = 2 * tuples;
      break;
    }
    case join::JoinAlgorithm::kPht: {
      const size_t ws = join::PhtHashTableBytes(b);
      p.seq_read_bytes = (b + pr) * sizeof(Tuple);
      p.rand_writes = b;
      p.rand_write_working_set = ws;
      p.rand_reads = pr;
      p.rand_read_working_set = ws;
      if (batched) {
        p.hidden_random_reads = pr;
        p.software_mlp = true;
      }
      p.loop_iterations = b + pr;
      break;
    }
    case join::JoinAlgorithm::kCht: {
      const size_t ws = join::ChtTableBytes(b);
      p.seq_read_bytes = (2 * b + pr) * sizeof(Tuple);
      p.rand_writes = b;
      p.rand_write_working_set = ws;
      p.rand_reads = pr;
      p.rand_read_working_set = ws;
      if (batched) {
        p.hidden_random_reads = pr;
        p.software_mlp = true;
      }
      p.loop_iterations = 2 * b + pr;
      break;
    }
    default:
      break;
  }
  return p;
}

std::optional<join::JoinAlgorithm> ForcedJoinAlgo() {
  std::optional<std::string> v = EnvString("SGXBENCH_JOIN_ALGO");
  if (!v) return std::nullopt;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "rho") return join::JoinAlgorithm::kRho;
  if (s == "pht") return join::JoinAlgorithm::kPht;
  if (s == "cht") return join::JoinAlgorithm::kCht;
  return std::nullopt;
}

// --- Whole-plan mode costing ----------------------------------------------
// Per node, the cost the two lowerings do NOT share: the materializing
// path pays a write + re-read round trip for every row-id list, gathered
// relation, and join intermediate (perf::MaterializationTrafficNs — the
// traffic class enclave memory encryption penalizes hardest), while the
// fused path replaces the joins' partition passes with unpartitioned
// probes of shared tables. Scanned base-column traffic is identical and
// included on both sides so the totals stay interpretable as runtimes.

void EstimateModeCosts(const Plan& plan, const tpch::TpchDbView& db,
                       const QueryConfig& config, PlanDecisions* d) {
  const perf::CostModel& model = perf::CostModel::Reference();
  const perf::ExecutionEnv env = EnvOf(config);
  const bool batched = d->probe_mode != exec::ProbeMode::kTupleAtATime;
  double mat = 0;
  double fused = 0;
  for (size_t id = 0; id < plan.nodes().size(); ++id) {
    const PlanNode& n = plan.node(static_cast<int>(id));
    const double out_rows = d->est_rows[id];
    switch (n.kind) {
      case PlanNode::Kind::kScan: {
        const size_t rows = TableRows(db, n.table);
        size_t col_bytes = 0;
        for (const Predicate& p : n.predicates) {
          col_bytes += rows * ColWidth(p.col);
          if (p.kind == Predicate::Kind::kColLess) {
            col_bytes += rows * ColWidth(p.rhs);
          }
        }
        perf::AccessProfile sp;
        sp.seq_read_bytes = col_bytes;
        sp.loop_iterations = rows;
        sp.ilp = perf::IlpClass::kUnrolledReordered;
        const double scan_ns = model.EstimateNanos(sp, env);
        mat += scan_ns;
        fused += scan_ns;
        // One materialized row-id list per filter/refine step.
        const double list_bytes =
            out_rows * sizeof(uint64_t) *
            std::max<size_t>(n.predicates.size(), 1);
        mat += perf::MaterializationTrafficNs(
            model, static_cast<uint64_t>(list_bytes), env);
        break;
      }
      case PlanNode::Kind::kJoin: {
        const double build_rows = d->est_rows[static_cast<size_t>(n.build)];
        const double probe_rows = d->est_rows[static_cast<size_t>(n.probe)];
        // Materializing: gathered key relations in, matched row ids out,
        // plus the chosen flavour's own cost.
        mat += d->joins[id].cost_ns;
        mat += perf::MaterializationTrafficNs(
            model,
            static_cast<uint64_t>((build_rows + probe_rows + out_rows) *
                                  sizeof(Tuple)),
            env);
        // Fused: build the shared table once, probe it in the pipeline.
        const size_t ws = join::BucketChainTable::BytesFor(std::max<size_t>(
            TableRows(db, plan.OutputTable(n.build)), 1));
        perf::AccessProfile fp;
        fp.rand_writes = static_cast<uint64_t>(std::max(build_rows, 1.0));
        fp.rand_write_working_set = ws;
        fp.rand_reads = static_cast<uint64_t>(std::max(probe_rows, 1.0));
        fp.rand_read_working_set = ws;
        if (batched) {
          fp.hidden_random_reads = fp.rand_reads;
          fp.software_mlp = true;
        }
        fp.loop_iterations = fp.rand_writes + fp.rand_reads;
        fp.ilp = perf::IlpClass::kUnrolledReordered;
        fused += model.EstimateNanos(fp, env);
        break;
      }
      case PlanNode::Kind::kUnionAll:
      case PlanNode::Kind::kAggregate:
        // The final aggregate touches the same rows in both modes.
        break;
    }
  }
  d->materializing_cost_ns = mat;
  d->fused_cost_ns = fused;
}

}  // namespace

bool PlannerEnabled() { return EnvBool("SGXBENCH_PLANNER", true); }

bool FusedLowerable(const Plan& plan) {
  if (!plan.valid()) return false;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNode::Kind::kJoin &&
        plan.node(n.probe).kind != PlanNode::Kind::kScan) {
      return false;
    }
  }
  return true;
}

PlanDecisions DecideFor(const Plan& plan, const tpch::TpchDbView& db,
                        const QueryConfig& config) {
  PlanDecisions d;
  const size_t num_nodes = plan.nodes().size();
  d.est_rows.assign(num_nodes, 0);
  d.joins.assign(num_nodes, JoinChoice{});
  if (!plan.valid()) return d;

  // Probe scheduling resolves exactly like the joins' own knobs.
  {
    join::JoinConfig jc;
    jc.flavor = config.flavor;
    jc.probe_mode = config.probe_mode;
    jc.probe_batch = config.probe_batch;
    d.probe_mode = join::EffectiveProbeMode(jc);
    d.probe_batch = join::EffectiveProbeWidth(jc, d.probe_mode);
  }

  EstimateRows(plan, db, plan.root(), &d.est_rows);

  const bool planner_on = PlannerEnabled();
  const bool batched = d.probe_mode != exec::ProbeMode::kTupleAtATime;
  const std::optional<join::JoinAlgorithm> forced = ForcedJoinAlgo();
  const perf::CostModel& model = perf::CostModel::Reference();
  const perf::ExecutionEnv env = EnvOf(config);
  for (size_t id = 0; id < num_nodes; ++id) {
    const PlanNode& n = plan.node(static_cast<int>(id));
    if (n.kind != PlanNode::Kind::kJoin) continue;
    const double build_rows = d.est_rows[static_cast<size_t>(n.build)];
    const double probe_rows = d.est_rows[static_cast<size_t>(n.probe)];
    JoinChoice& choice = d.joins[id];
    if (forced) {
      choice.algo = *forced;
      choice.cost_ns = model.EstimateNanos(
          JoinProfile(choice.algo, build_rows, probe_rows, batched), env);
    } else if (planner_on) {
      const join::JoinAlgorithm candidates[] = {join::JoinAlgorithm::kRho,
                                                join::JoinAlgorithm::kPht,
                                                join::JoinAlgorithm::kCht};
      double best = 0;
      for (join::JoinAlgorithm algo : candidates) {
        const double cost = model.EstimateNanos(
            JoinProfile(algo, build_rows, probe_rows, batched), env);
        if (choice.cost_ns == 0 || cost < best) {
          if (choice.cost_ns != 0 && cost >= best) continue;
          choice.algo = algo;
          best = cost;
          choice.cost_ns = cost;
        }
      }
      choice.cost_based = true;
    } else {
      choice.algo = join::JoinAlgorithm::kRho;
      choice.cost_ns = model.EstimateNanos(
          JoinProfile(choice.algo, build_rows, probe_rows, batched), env);
    }
  }

  EstimateModeCosts(plan, db, config, &d);

  // Execution mode: explicit config wins, then SGXBENCH_PIPELINE if the
  // user set it (a malformed value warns once and is treated as unset),
  // then the cost model (planner on), else the paper's materializing
  // default. Plans the fused lowering cannot drive (a join probing a
  // non-scan) always materialize.
  const std::optional<bool> forced_mode = config.pipeline.has_value()
                                              ? config.pipeline
                                              : EnvBoolOpt("SGXBENCH_PIPELINE");
  if (forced_mode.has_value()) {
    d.fused = *forced_mode;
  } else if (planner_on && FusedLowerable(plan)) {
    d.fused = d.fused_cost_ns < d.materializing_cost_ns;
    d.mode_cost_based = true;
  } else {
    d.fused = false;
  }
  if (d.fused && !FusedLowerable(plan)) d.fused = false;
  return d;
}

// --- Explain --------------------------------------------------------------

namespace {

const char* AggKindName(AggSpec::Kind kind) {
  switch (kind) {
    case AggSpec::Kind::kCountStar:
      return "count(*)";
    case AggSpec::Kind::kGroupCountViaFk:
      return "group-count-via-fk";
    case AggSpec::Kind::kGroupSum2:
      return "group-count-sum";
    case AggSpec::Kind::kSumProduct:
      return "sum-product";
  }
  return "?";
}

void DumpNode(const Plan& plan, const PlanDecisions& d, int id, int depth,
              std::ostringstream& os) {
  const PlanNode& n = plan.node(id);
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  os << pad << "#" << id << " ";
  switch (n.kind) {
    case PlanNode::Kind::kScan: {
      os << "Scan(" << TableName(n.table) << ") ~"
         << static_cast<uint64_t>(d.est_rows[static_cast<size_t>(id)])
         << " rows\n";
      for (const Predicate& p : n.predicates) {
        os << pad << "    where " << p.ToString() << "\n";
      }
      break;
    }
    case PlanNode::Kind::kJoin: {
      const JoinChoice& c = d.joins[static_cast<size_t>(id)];
      os << "Join(" << ColName(n.build_key) << " = " << ColName(n.probe_key)
         << ") [" << join::JoinAlgorithmToString(c.algo)
         << (c.cost_based ? ", cost-based" : "") << ", est_cost="
         << static_cast<uint64_t>(c.cost_ns) << "ns] ~"
         << static_cast<uint64_t>(d.est_rows[static_cast<size_t>(id)])
         << " rows\n";
      DumpNode(plan, d, n.build, depth + 1, os);
      DumpNode(plan, d, n.probe, depth + 1, os);
      break;
    }
    case PlanNode::Kind::kUnionAll: {
      os << "UnionAll ~"
         << static_cast<uint64_t>(d.est_rows[static_cast<size_t>(id)])
         << " rows\n";
      for (int c : n.children) DumpNode(plan, d, c, depth + 1, os);
      break;
    }
    case PlanNode::Kind::kAggregate: {
      os << "Aggregate " << AggKindName(n.agg.kind) << "\n";
      DumpNode(plan, d, n.input, depth + 1, os);
      break;
    }
  }
}

}  // namespace

std::string Explain(const Plan& plan, const PlanDecisions& d) {
  std::ostringstream os;
  os << "plan " << plan.name() << ": mode="
     << (d.fused ? "fused" : "materializing")
     << (d.mode_cost_based ? " (cost model)" : " (forced)")
     << " fused~" << static_cast<uint64_t>(d.fused_cost_ns) << "ns"
     << " materializing~"
     << static_cast<uint64_t>(d.materializing_cost_ns) << "ns"
     << " probe=" << exec::ProbeModeToString(d.probe_mode) << " x"
     << d.probe_batch << "\n";
  if (plan.valid()) DumpNode(plan, d, plan.root(), 0, os);
  return os.str();
}

// --- Materializing lowering ----------------------------------------------
// Reproduces the operator-at-a-time drivers generically: filters drive
// the first predicate, refinements the rest, joins gather both key
// columns and run the chosen flavour. A count(*) root lowers its final
// join as a CountingJoin (no output materialization), exactly like the
// hand-written query bodies did.

namespace {

class MatExecutor {
 public:
  MatExecutor(const Plan& plan, const tpch::TpchDbView& db,
              const QueryConfig& config, const PlanDecisions& dec)
      : plan_(plan), db_(db), config_(config), dec_(dec) {}

  Result<QueryResult> Run();

 private:
  using RowsOpt = std::optional<RowIdList>;  // nullopt = every row

  Result<RowsOpt> ExecNode(int id, const std::string& suffix);
  Result<RowsOpt> ExecScan(int id, const std::string& suffix);
  Result<RowIdList> ExecJoin(int id, const std::string& suffix);
  Result<uint64_t> ExecCount(int id, const std::string& suffix);
  Result<Relation> Gather(ColId key, const RowsOpt& rows,
                          const std::string& suffix);
  Result<RowIdList> RowsOrIota(int id, RowsOpt rows);

  std::string JoinName(const PlanNode& n, const std::string& suffix) const {
    return std::string("join_") + TableName(plan_.OutputTable(n.build)) +
           "_" + TableName(plan_.OutputTable(n.probe)) + suffix;
  }

  const Plan& plan_;
  const tpch::TpchDbView& db_;
  const QueryConfig& config_;
  const PlanDecisions& dec_;
  tpch::OpRecorder rec_;
};

Result<MatExecutor::RowsOpt> MatExecutor::ExecScan(
    int id, const std::string& suffix) {
  const PlanNode& n = plan_.node(id);
  if (n.predicates.empty()) return RowsOpt{};
  size_t next = 0;
  Result<RowIdList> rows = [&]() -> Result<RowIdList> {
    const Predicate& p = n.predicates[0];
    switch (p.kind) {
      case Predicate::Kind::kU32Range:
        next = 1;
        return tpch::FilterU32Range(
            U32Column(db_, p.col), p.lo, p.hi, config_, &rec_,
            std::string("filter_") + ColName(p.col) + suffix);
      case Predicate::Kind::kU8Range:
        next = 1;
        return tpch::FilterU8Range(
            U8Column(db_, p.col), static_cast<uint8_t>(p.lo),
            static_cast<uint8_t>(p.hi), config_, &rec_,
            std::string("filter_") + ColName(p.col) + suffix);
      case Predicate::Kind::kColLess:
        // No direct filter form; scan the left column full-range and let
        // the refinement loop below apply the predicate itself.
        return tpch::FilterU32Range(
            U32Column(db_, p.col), 0, 0xffffffffu, config_, &rec_,
            std::string("filter_") + TableName(n.table) + suffix);
      case Predicate::Kind::kU8InSet:
        return tpch::FilterU8Range(
            U8Column(db_, p.col), 0, 255, config_, &rec_,
            std::string("filter_") + TableName(n.table) + suffix);
    }
    return Status::Internal("unreachable predicate kind");
  }();
  if (!rows.ok()) return rows.status();

  for (size_t i = next; i < n.predicates.size(); ++i) {
    const Predicate& p = n.predicates[i];
    const std::string name =
        std::string("refine_") + ColName(p.col) + suffix;
    Result<RowIdList> refined = [&]() -> Result<RowIdList> {
      switch (p.kind) {
        case Predicate::Kind::kU32Range:
          return tpch::RefineU32Range(rows.value(), U32Column(db_, p.col),
                                      p.lo, p.hi, config_, &rec_, name);
        case Predicate::Kind::kU8Range: {
          if (p.hi > 63) {
            return Status::InvalidArgument(
                "u8 range refinement requires codes < 64");
          }
          uint64_t mask = 0;
          for (uint32_t c = p.lo; c <= p.hi; ++c) mask |= uint64_t{1} << c;
          return tpch::RefineU8InSet(rows.value(), U8Column(db_, p.col),
                                     mask, config_, &rec_, name);
        }
        case Predicate::Kind::kU8InSet:
          return tpch::RefineU8InSet(rows.value(), U8Column(db_, p.col),
                                     p.mask, config_, &rec_, name);
        case Predicate::Kind::kColLess:
          return tpch::RefineLess(rows.value(), U32Column(db_, p.col),
                                  U32Column(db_, p.rhs), config_, &rec_,
                                  name);
      }
      return Status::Internal("unreachable predicate kind");
    }();
    if (!refined.ok()) return refined.status();
    rows = std::move(refined);
  }
  return RowsOpt{std::move(rows).value()};
}

Result<Relation> MatExecutor::Gather(ColId key, const RowsOpt& rows,
                                     const std::string& suffix) {
  return tpch::GatherKeys(U32Column(db_, key),
                          rows.has_value() ? &*rows : nullptr, config_,
                          &rec_,
                          std::string("gather_") + ColName(key) + suffix);
}

Result<RowIdList> MatExecutor::ExecJoin(int id, const std::string& suffix) {
  const PlanNode& n = plan_.node(id);
  auto build_rows = ExecNode(n.build, suffix);
  if (!build_rows.ok()) return build_rows.status();
  auto probe_rows = ExecNode(n.probe, suffix);
  if (!probe_rows.ok()) return probe_rows.status();
  auto build = Gather(n.build_key, build_rows.value(), suffix);
  if (!build.ok()) return build.status();
  auto probe = Gather(n.probe_key, probe_rows.value(), suffix);
  if (!probe.ok()) return probe.status();
  auto step = tpch::MaterializingJoin(
      build.value(), probe.value(), config_, &rec_, JoinName(n, suffix),
      dec_.joins[static_cast<size_t>(id)].algo);
  if (!step.ok()) return step.status();
  return std::move(step.value().probe_rows);
}

Result<MatExecutor::RowsOpt> MatExecutor::ExecNode(
    int id, const std::string& suffix) {
  const PlanNode& n = plan_.node(id);
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      return ExecScan(id, suffix);
    case PlanNode::Kind::kJoin: {
      auto rows = ExecJoin(id, suffix);
      if (!rows.ok()) return rows.status();
      return RowsOpt{std::move(rows).value()};
    }
    case PlanNode::Kind::kUnionAll: {
      std::vector<RowIdList> parts;
      uint64_t total = 0;
      int branch = 0;
      for (int c : n.children) {
        auto part =
            ExecNode(c, suffix + "_b" + std::to_string(++branch));
        if (!part.ok()) return part.status();
        if (!part.value().has_value()) return RowsOpt{};  // all rows
        total += part.value()->count();
        parts.push_back(std::move(*part.value()));
      }
      auto merged = RowIdList::Allocate(total, config_);
      if (!merged.ok()) return merged.status();
      uint64_t k = 0;
      uint64_t* out = merged.value().ids();
      for (const RowIdList& part : parts) {
        const uint64_t* ids = part.ids();
        for (uint64_t i = 0; i < part.count(); ++i) out[k++] = ids[i];
      }
      merged.value().set_count(k);
      tpch::ChargeBytesMaterialized(k * sizeof(uint64_t));
      return RowsOpt{std::move(merged).value()};
    }
    case PlanNode::Kind::kAggregate:
      break;
  }
  return Status::Internal("ExecNode reached an aggregate node");
}

Result<uint64_t> MatExecutor::ExecCount(int id, const std::string& suffix) {
  const PlanNode& n = plan_.node(id);
  switch (n.kind) {
    case PlanNode::Kind::kScan: {
      auto rows = ExecScan(id, suffix);
      if (!rows.ok()) return rows.status();
      if (!rows.value().has_value()) {
        return static_cast<uint64_t>(TableRows(db_, n.table));
      }
      return rows.value()->count();
    }
    case PlanNode::Kind::kJoin: {
      auto build_rows = ExecNode(n.build, suffix);
      if (!build_rows.ok()) return build_rows.status();
      auto probe_rows = ExecNode(n.probe, suffix);
      if (!probe_rows.ok()) return probe_rows.status();
      auto build = Gather(n.build_key, build_rows.value(), suffix);
      if (!build.ok()) return build.status();
      auto probe = Gather(n.probe_key, probe_rows.value(), suffix);
      if (!probe.ok()) return probe.status();
      return tpch::CountingJoin(build.value(), probe.value(), config_,
                                &rec_, JoinName(n, suffix),
                                dec_.joins[static_cast<size_t>(id)].algo);
    }
    case PlanNode::Kind::kUnionAll: {
      uint64_t total = 0;
      int branch = 0;
      for (int c : n.children) {
        auto count = ExecCount(c, suffix + "_b" + std::to_string(++branch));
        if (!count.ok()) return count.status();
        total += count.value();
      }
      return total;
    }
    case PlanNode::Kind::kAggregate:
      break;
  }
  return Status::Internal("ExecCount reached an aggregate node");
}

Result<RowIdList> MatExecutor::RowsOrIota(int id, RowsOpt rows) {
  if (rows.has_value()) return std::move(*rows);
  const size_t n = TableRows(db_, plan_.OutputTable(id));
  auto list = RowIdList::Allocate(n, config_);
  if (!list.ok()) return list.status();
  uint64_t* ids = list.value().ids();
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  list.value().set_count(n);
  return std::move(list).value();
}

Result<QueryResult> MatExecutor::Run() {
  WallTimer timer;
  const PlanNode& root = plan_.node(plan_.root());
  const AggSpec& agg = root.agg;
  QueryResult result;
  switch (agg.kind) {
    case AggSpec::Kind::kCountStar: {
      auto count = ExecCount(root.input, "");
      if (!count.ok()) return count.status();
      result.count = count.value();
      break;
    }
    case AggSpec::Kind::kGroupCountViaFk: {
      auto rows_opt = ExecNode(root.input, "");
      if (!rows_opt.ok()) return rows_opt.status();
      auto rows = RowsOrIota(root.input, std::move(rows_opt).value());
      if (!rows.ok()) return rows.status();
      auto counts = tpch::GroupCountU8ViaFk(
          U8Column(db_, agg.values), U32Column(db_, agg.fk), rows.value(),
          agg.num_groups, config_, &rec_,
          std::string("group_by_") + ColName(agg.values));
      if (!counts.ok()) return counts.status();
      const std::vector<uint64_t>& raw = counts.value();
      if (agg.output_map.empty()) {
        result.group_counts = raw;
      } else {
        const int slots = 1 + *std::max_element(agg.output_map.begin(),
                                                agg.output_map.end());
        result.group_counts.assign(static_cast<size_t>(slots), 0);
        for (size_t g = 0; g < raw.size(); ++g) {
          result.group_counts[static_cast<size_t>(agg.output_map[g])] +=
              raw[g];
        }
      }
      for (uint64_t c : result.group_counts) result.count += c;
      break;
    }
    case AggSpec::Kind::kGroupSum2: {
      auto rows_opt = ExecNode(root.input, "");
      if (!rows_opt.ok()) return rows_opt.status();
      const RowIdList* rows_ptr = rows_opt.value().has_value()
                                      ? &*rows_opt.value()
                                      : nullptr;
      auto aggs = tpch::GroupSumU32By2U8(
          U32Column(db_, agg.value), U8Column(db_, agg.g1), agg.num_g1,
          U8Column(db_, agg.g2), agg.num_g2, rows_ptr, config_, &rec_,
          std::string("group_") + ColName(agg.g1) + "_" + ColName(agg.g2));
      if (!aggs.ok()) return aggs.status();
      for (const tpch::GroupAgg& g : aggs.value()) {
        result.group_counts.push_back(g.count);
        result.count += g.count;
      }
      break;
    }
    case AggSpec::Kind::kSumProduct: {
      auto rows_opt = ExecNode(root.input, "");
      if (!rows_opt.ok()) return rows_opt.status();
      auto rows = RowsOrIota(root.input, std::move(rows_opt).value());
      if (!rows.ok()) return rows.status();
      auto sum = tpch::SumProductU32(
          U32Column(db_, agg.value), U32Column(db_, agg.value2),
          rows.value(), config_, &rec_,
          std::string("sum_") + ColName(agg.value) + "_" +
              ColName(agg.value2));
      if (!sum.ok()) return sum.status();
      result.count = rows.value().count();
      result.group_counts = {sum.value()};
      break;
    }
  }
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec_.Take();
  return result;
}

}  // namespace

Result<QueryResult> ExecuteMaterializing(const Plan& plan,
                                         const tpch::TpchDbView& db,
                                         const QueryConfig& config,
                                         const PlanDecisions& decisions) {
  if (!plan.valid()) {
    return Status::InvalidArgument("cannot execute an invalid plan");
  }
  MatExecutor exec(plan, db, config, decisions);
  return exec.Run();
}

namespace {

// The adaptive controller never overrides a knob the user forced: the
// tuner's pick applies only where config and environment are silent, so
// SGXBENCH_PIPELINE / SGXBENCH_PROBE_MODE ablations still pin exactly
// what they always pinned.
std::unique_ptr<tune::QueryTuner> MakeTuner(const Plan& plan,
                                            const tpch::TpchDbView& db,
                                            const QueryConfig& config,
                                            PlanDecisions* d) {
  tune::WorkloadKey key;
  key.query = plan.name();
  uint64_t max_rows = 0;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNode::Kind::kScan) {
      max_rows = std::max<uint64_t>(max_rows, TableRows(db, n.table));
    }
  }
  key.sf_bucket = tune::SfBucket(max_rows);
  key.concurrency_band = tune::ConcurrencyBand(
      std::max(tune::InflightQueries(), 1));

  tune::KnobSetting prior;
  prior.fused = d->fused;
  prior.probe_mode = d->probe_mode;
  prior.probe_batch = d->probe_batch;

  auto tuner = std::make_unique<tune::QueryTuner>(
      key, prior, obs::CurrentMetricDomain());
  const tune::KnobSetting& pick = tuner->chosen();

  const bool mode_forced = config.pipeline.has_value() ||
                           EnvBoolOpt("SGXBENCH_PIPELINE").has_value();
  if (!mode_forced && (!pick.fused || FusedLowerable(plan))) {
    if (d->fused != pick.fused) d->mode_cost_based = false;
    d->fused = pick.fused;
  }
  const bool probe_forced = config.probe_mode.has_value() ||
                            EnvString("SGXBENCH_PROBE_MODE").has_value();
  if (!probe_forced) d->probe_mode = pick.probe_mode;
  if (config.probe_batch <= 0 && !EnvString("SGXBENCH_PROBE_BATCH") &&
      !EnvString("SGXBENCH_PROBE_DIST")) {
    d->probe_batch = exec::ClampProbeWidth(pick.probe_batch);
  }
  d->tuner = tuner.get();
  return tuner;
}

}  // namespace

Result<QueryResult> ExecutePlan(const Plan& plan,
                                const tpch::TpchDbView& db,
                                const QueryConfig& config) {
  if (!plan.valid()) {
    return Status::InvalidArgument("cannot execute an invalid plan");
  }
  PlanDecisions decisions = DecideFor(plan, db, config);
  std::unique_ptr<tune::QueryTuner> tuner;
  if (tune::AdaptiveEnabled()) {
    tuner = MakeTuner(plan, db, config, &decisions);
  }
  std::string explain;
  if (EnvBool("SGXBENCH_EXPLAIN", false)) {
    explain = Explain(plan, decisions);
    if (tuner) {
      explain += "tune: " + tuner->chosen().Key() + " (" +
                 tuner->source() + ")\n";
    }
    std::fprintf(stderr, "%s", explain.c_str());
    if (obs::TracingEnabled()) {
      obs::TraceInstant(obs::InternName("explain." + plan.name()), "plan");
    }
  }
  WallTimer wall;
  Result<QueryResult> result =
      decisions.fused ? ExecuteFused(plan, db, config, decisions)
                      : ExecuteMaterializing(plan, db, config, decisions);
  if (!result.ok()) return result;
  if (tuner) {
    tuner->Finish(static_cast<double>(wall.ElapsedNanos()));
    obs::TuningReport& t = result.value().tuning;
    t.active = true;
    t.fused = decisions.fused;
    t.probe_mode = exec::ProbeModeToString(decisions.probe_mode);
    t.probe_batch = decisions.probe_batch;
    t.morsel_grain = tuner->chosen().morsel_grain;
    t.source = tuner->source();
    t.decisions = tuner->decisions();
    t.switches = tuner->switches();
    t.cache_hits = tuner->cache_hits();
  }
  result.value().explain = std::move(explain);
  return result;
}

}  // namespace sgxb::plan
