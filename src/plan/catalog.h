// The query catalog: every workload query declared as a logical plan.
//
// Queries are catalog entries, not driver code — adding a query means
// appending a Plan here; the planner (plan/planner.h) lowers it to
// either execution mode. The predicate constants the paper's queries
// share (formerly tpch/query_constants.h) live here too, so the catalog
// is the single source of truth for both the plans and the reference
// oracles in tpch/queries.cc.

#ifndef SGXB_PLAN_CATALOG_H_
#define SGXB_PLAN_CATALOG_H_

#include <cstdint>
#include <vector>

#include "plan/plan.h"
#include "tpch/tpch_schema.h"

namespace sgxb::tpch {

constexpr uint64_t Bit(uint8_t code) { return uint64_t{1} << code; }

// Q12 ship modes: MAIL and SHIP.
inline constexpr uint64_t kQ12ModeMask = Bit(kModeMail) | Bit(kModeShip);
// Q19 ship modes: AIR and AIR REG.
inline constexpr uint64_t kQ19ModeMask = Bit(kModeAir) | Bit(kModeRegAir);

// Q19 branch parameters (brand codes are arbitrary but fixed; containers
// encode size*8+kind, see tpch_schema.h).
struct Q19Branch {
  uint8_t brand;
  uint64_t container_mask;
  uint32_t qty_lo;
  uint32_t qty_hi;
  uint32_t size_hi;
};

inline constexpr Q19Branch kQ19Branches[3] = {
    // Brand#12, SM CASE/BOX/PACK/PKG, qty in [1, 11], size in [1, 5]
    {3, Bit(0) | Bit(1) | Bit(5) | Bit(4), 1, 11, 5},
    // Brand#23, MED BAG/BOX/PKG/PACK, qty in [10, 20], size in [1, 10]
    {8, Bit(10) | Bit(9) | Bit(12) | Bit(13), 10, 20, 10},
    // Brand#34, LG CASE/BOX/PACK/PKG, qty in [20, 30], size in [1, 15]
    {14, Bit(16) | Bit(17) | Bit(21) | Bit(20), 20, 30, 15},
};

// Q1's shipdate cutoff: date '1998-12-01' - interval '90' day.
inline constexpr uint32_t kQ1Cutoff =
    static_cast<uint32_t>(DaysFromCivil(1998, 9, 2));

}  // namespace sgxb::tpch

namespace sgxb::plan {

// Plan-only query numbers (no per-query driver code exists for these;
// they run exclusively through the planner). The 10x numbering keeps
// them clear of real TPC-H query numbers.
inline constexpr int kQueryQ5Multiway = 105;
inline constexpr int kQueryQ5Grouped = 106;
inline constexpr int kQueryQ12Grouped = 112;

/// \brief One catalog query: a number for RunQuery-style dispatch, a
/// report name, and the validated plan.
struct CatalogEntry {
  int query_number = 0;
  const char* name = "";
  const char* description = "";
  Plan plan;
};

/// \brief All catalog queries, in query-number order. Built once on
/// first use; a malformed static plan aborts (it is a programming
/// error, not input). Numbers 1/3/6/10/12/19 are the paper's queries;
/// 105/106 are the plan-only Q5-style multi-way joins and 112 is the
/// grouped Q12 variant.
const std::vector<CatalogEntry>& Catalog();

/// \brief Catalog lookup by query number; nullptr when absent.
const CatalogEntry* FindQuery(int query_number);

}  // namespace sgxb::plan

#endif  // SGXB_PLAN_CATALOG_H_
