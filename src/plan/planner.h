// The planner: lowers a logical Plan to execution (docs/planner.md).
//
// Lowering picks one of the two execution modes the repo grew by hand —
// the paper's materializing operator-at-a-time path (tpch/operators.h)
// or a chain of fused RunMorselPipeline stages (exec/pipeline.h) — and,
// per join node, a join flavour (RHO / PHT / CHT) plus probe scheduling.
// Decisions come from explicit config first, then the SGXBENCH_* knobs,
// then the calibrated cost model (perf/cost_model.h) evaluated over
// cardinality estimates from the bound database view.
//
// Compiled into sgxb_tpch (it drives the tpch operators); the plan IR
// itself (sgxb_plan) stays free of execution dependencies.

#ifndef SGXB_PLAN_PLANNER_H_
#define SGXB_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "exec/probe_pipeline.h"
#include "join/join_common.h"
#include "plan/plan.h"
#include "tpch/queries.h"

namespace sgxb::tune {
class QueryTuner;
}

namespace sgxb::plan {

/// \brief Per-join-node lowering decision.
struct JoinChoice {
  join::JoinAlgorithm algo = join::JoinAlgorithm::kRho;
  /// True when `algo` came from the cost model rather than a knob.
  bool cost_based = false;
  /// Estimated cost of the chosen flavour (materializing form), ns.
  double cost_ns = 0;
};

/// \brief Everything the planner decided for one (plan, db, config)
/// binding. est_rows/joins are indexed by plan node id.
struct PlanDecisions {
  /// Chosen lowering: fused morsel pipelines vs materializing operators.
  bool fused = false;
  /// True when the mode came from the cost model (no pipeline knob set).
  bool mode_cost_based = false;
  /// Modeled cost of each whole-plan lowering, ns (0 = not evaluated).
  double fused_cost_ns = 0;
  double materializing_cost_ns = 0;
  /// Probe scheduling for every hash probe in the plan (fused stages and
  /// the join flavours' probe loops resolve identically).
  exec::ProbeMode probe_mode = exec::ProbeMode::kGroupPrefetch;
  int probe_batch = 0;
  /// Estimated output rows per node (selectivity priors x cardinality).
  std::vector<double> est_rows;
  /// Join flavour decision per node (meaningful at kJoin nodes).
  std::vector<JoinChoice> joins;
  /// Set by ExecutePlan when SGXBENCH_ADAPTIVE is on: the query's
  /// adaptive controller (src/tune/). The fused lowering reads its live
  /// knobs per morsel and attaches its wave controller; null (the
  /// default) keeps the static behaviour bit-for-bit.
  tune::QueryTuner* tuner = nullptr;
};

/// \brief True when the planner itself (cost-based mode and flavour
/// choice) is enabled: SGXBENCH_PLANNER, default on. Off = the legacy
/// behaviour (materializing unless the pipeline knob says otherwise; all
/// joins RHO).
bool PlannerEnabled();

/// \brief Computes every lowering decision for `plan` bound to `db`
/// under `config`. Deterministic; does not execute anything.
PlanDecisions DecideFor(const Plan& plan, const tpch::TpchDbView& db,
                        const tpch::QueryConfig& config);

/// \brief Plan dump annotated with the decisions: per-node estimated
/// rows, join flavour / probe mode / estimated cost, and the chosen
/// mode with both modeled lowering costs. This is what SGXBENCH_EXPLAIN
/// prints (and attaches to QueryResult::explain).
std::string Explain(const Plan& plan, const PlanDecisions& decisions);

/// \brief Executes `plan` with the given decisions through the
/// materializing operator path. Exposed (like ExecuteFused) so tests and
/// benches can force one lowering; RunPlan/ExecutePlan is the normal
/// entry.
Result<tpch::QueryResult> ExecuteMaterializing(
    const Plan& plan, const tpch::TpchDbView& db,
    const tpch::QueryConfig& config, const PlanDecisions& decisions);

/// \brief Executes `plan` as a chain of fused morsel pipelines.
/// Requires every join's probe child to be a scan (DecideFor never
/// chooses fused otherwise; catalog plans all qualify).
Result<tpch::QueryResult> ExecuteFused(const Plan& plan,
                                       const tpch::TpchDbView& db,
                                       const tpch::QueryConfig& config,
                                       const PlanDecisions& decisions);

/// \brief True when ExecuteFused can lower this plan (all probe
/// children are scans).
bool FusedLowerable(const Plan& plan);

/// \brief Decide + (optionally) explain + execute: the planner's main
/// entry point. tpch::RunPlan / RunQuery wrap this.
Result<tpch::QueryResult> ExecutePlan(const Plan& plan,
                                      const tpch::TpchDbView& db,
                                      const tpch::QueryConfig& config);

}  // namespace sgxb::plan

#endif  // SGXB_PLAN_PLANNER_H_
