#include "plan/catalog.h"

#include <cstdio>
#include <cstdlib>

namespace sgxb::plan {

namespace {

using tpch::Bit;
using tpch::kQ12ModeMask;
using tpch::kQ19Branches;
using tpch::kQ19ModeMask;

Plan MustBuild(PlanBuilder& b, int root, const char* name) {
  Result<Plan> plan = b.Build(root, name);
  if (!plan.ok()) {
    std::fprintf(stderr, "catalog plan %s invalid: %s\n", name,
                 plan.status().message().c_str());
    std::abort();
  }
  return std::move(plan).value();
}

Plan MakeQ1() {
  PlanBuilder b;
  const int li = b.Scan(
      TableId::kLineitem,
      {Predicate::U32Range(ColId::kLShipdate, 0, tpch::kQ1Cutoff)});
  const int agg = b.Aggregate(
      li, AggSpec::GroupSum2(ColId::kLQuantity, ColId::kLReturnflag,
                             tpch::kNumReturnFlags, ColId::kLLinestatus,
                             tpch::kNumLineStatuses));
  return MustBuild(b, agg, "Q1");
}

Plan MakeQ3() {
  PlanBuilder b;
  const int cust = b.Scan(
      TableId::kCustomer,
      {Predicate::U8Eq(ColId::kCMktsegment, tpch::kSegBuilding)});
  const int ord = b.Scan(
      TableId::kOrders,
      {Predicate::U32Range(ColId::kOOrderdate, 0, tpch::kDate19950315 - 1)});
  const int co = b.Join(cust, ord, ColId::kCCustkey, ColId::kOCustkey);
  const int li = b.Scan(
      TableId::kLineitem,
      {Predicate::U32Range(ColId::kLShipdate, tpch::kDate19950315 + 1,
                           0xffffffffu)});
  const int col = b.Join(co, li, ColId::kOOrderkey, ColId::kLOrderkey);
  return MustBuild(b, b.Aggregate(col, AggSpec::CountStar()), "Q3");
}

Plan MakeQ6() {
  PlanBuilder b;
  const int li = b.Scan(
      TableId::kLineitem,
      {Predicate::U32Range(ColId::kLShipdate, tpch::kDate19940101,
                           tpch::kDate19950101 - 1),
       Predicate::U32Range(ColId::kLDiscount, 5, 7),
       Predicate::U32Range(ColId::kLQuantity, 1, 23)});
  const int agg = b.Aggregate(
      li, AggSpec::SumProduct(ColId::kLExtendedprice, ColId::kLDiscount));
  return MustBuild(b, agg, "Q6");
}

Plan MakeQ10() {
  PlanBuilder b;
  const int cust = b.Scan(TableId::kCustomer);
  const int ord = b.Scan(
      TableId::kOrders,
      {Predicate::U32Range(ColId::kOOrderdate, tpch::kDate19931001,
                           tpch::kDate19940101 - 1)});
  const int co = b.Join(cust, ord, ColId::kCCustkey, ColId::kOCustkey);
  const int li = b.Scan(
      TableId::kLineitem,
      {Predicate::U8Eq(ColId::kLReturnflag, tpch::kFlagR)});
  const int col = b.Join(co, li, ColId::kOOrderkey, ColId::kLOrderkey);
  return MustBuild(b, b.Aggregate(col, AggSpec::CountStar()), "Q10");
}

std::vector<Predicate> Q12LineitemPredicates() {
  return {Predicate::U32Range(ColId::kLReceiptdate, tpch::kDate19940101,
                              tpch::kDate19950101 - 1),
          Predicate::U8InSet(ColId::kLShipmode, kQ12ModeMask),
          Predicate::Less(ColId::kLCommitdate, ColId::kLReceiptdate),
          Predicate::Less(ColId::kLShipdate, ColId::kLCommitdate)};
}

Plan MakeQ12() {
  PlanBuilder b;
  const int ord = b.Scan(TableId::kOrders);
  const int li = b.Scan(TableId::kLineitem, Q12LineitemPredicates());
  const int ol = b.Join(ord, li, ColId::kOOrderkey, ColId::kLOrderkey);
  return MustBuild(b, b.Aggregate(ol, AggSpec::CountStar()), "Q12");
}

Plan MakeQ19() {
  PlanBuilder b;
  std::vector<int> branches;
  for (const tpch::Q19Branch& br : kQ19Branches) {
    const int part = b.Scan(
        TableId::kPart,
        {Predicate::U8Eq(ColId::kPBrand, br.brand),
         Predicate::U8InSet(ColId::kPContainer, br.container_mask),
         Predicate::U32Range(ColId::kPSize, 1, br.size_hi)});
    const int li = b.Scan(
        TableId::kLineitem,
        {Predicate::U32Range(ColId::kLQuantity, br.qty_lo, br.qty_hi),
         Predicate::U8InSet(ColId::kLShipmode, kQ19ModeMask),
         Predicate::U8InSet(ColId::kLShipinstruct,
                            Bit(tpch::kInstrDeliverInPerson))});
    branches.push_back(b.Join(part, li, ColId::kPPartkey, ColId::kLPartkey));
  }
  const int u = b.UnionAll(std::move(branches));
  return MustBuild(b, b.Aggregate(u, AggSpec::CountStar()), "Q19");
}

// The two plan-only queries: a Q5-style customer⋈orders⋈lineitem
// multi-way join, flat and grouped. No driver code exists for these —
// they run purely through the planner.
int Q5JoinTree(PlanBuilder& b) {
  const int cust = b.Scan(
      TableId::kCustomer,
      {Predicate::U8Eq(ColId::kCMktsegment, tpch::kSegAutomobile)});
  const int ord = b.Scan(
      TableId::kOrders,
      {Predicate::U32Range(ColId::kOOrderdate, tpch::kDate19940101,
                           tpch::kDate19950101 - 1)});
  const int co = b.Join(cust, ord, ColId::kCCustkey, ColId::kOCustkey);
  const int li = b.Scan(TableId::kLineitem);
  return b.Join(co, li, ColId::kOOrderkey, ColId::kLOrderkey);
}

Plan MakeQ5M() {
  PlanBuilder b;
  const int col = Q5JoinTree(b);
  return MustBuild(b, b.Aggregate(col, AggSpec::CountStar()), "Q5M");
}

Plan MakeQ5G() {
  PlanBuilder b;
  const int col = Q5JoinTree(b);
  const int agg = b.Aggregate(
      col, AggSpec::GroupCountViaFk(ColId::kOOrderpriority, ColId::kLOrderkey,
                                    tpch::kNumOrderPriorities));
  return MustBuild(b, agg, "Q5G");
}

Plan MakeQ12Grouped() {
  PlanBuilder b;
  const int li = b.Scan(TableId::kLineitem, Q12LineitemPredicates());
  // Five order priorities folded into {high, low}: URGENT/HIGH -> 0,
  // the rest -> 1 (the TPC-H Q12 high_line/low_line split).
  const int agg = b.Aggregate(
      li, AggSpec::GroupCountViaFk(ColId::kOOrderpriority, ColId::kLOrderkey,
                                   tpch::kNumOrderPriorities,
                                   {0, 0, 1, 1, 1}));
  return MustBuild(b, agg, "Q12G");
}

}  // namespace

const std::vector<CatalogEntry>& Catalog() {
  static const std::vector<CatalogEntry>* entries = [] {
    auto* v = new std::vector<CatalogEntry>();
    v->push_back({1, "Q1", "pricing summary over lineitem", MakeQ1()});
    v->push_back({3, "Q3", "building-segment shipping priority", MakeQ3()});
    v->push_back({6, "Q6", "forecast revenue change", MakeQ6()});
    v->push_back({10, "Q10", "returned-item customers", MakeQ10()});
    v->push_back({12, "Q12", "late-receipt ship modes", MakeQ12()});
    v->push_back({19, "Q19", "discounted brand/container revenue",
                  MakeQ19()});
    v->push_back({kQueryQ5Multiway, "Q5M", "plan-only multi-way join (Q5-style)",
                  MakeQ5M()});
    v->push_back({kQueryQ5Grouped, "Q5G", "plan-only grouped multi-way join",
                  MakeQ5G()});
    v->push_back({kQueryQ12Grouped, "Q12G", "grouped Q12 (high/low priority)",
                  MakeQ12Grouped()});
    return v;
  }();
  return *entries;
}

const CatalogEntry* FindQuery(int query_number) {
  for (const CatalogEntry& e : Catalog()) {
    if (e.query_number == query_number) return &e;
  }
  return nullptr;
}

}  // namespace sgxb::plan
