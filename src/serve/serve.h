// Multi-tenant query serving front-end (docs/serving.md).
//
// Everything below src/serve/ runs one query at a time; this layer is the
// piece the ROADMAP's serving-scale north star actually serves: a stream
// of query requests from many clients, admitted under a bound, scheduled
// fairly onto the shared executor pool, each with its own arena pool and
// its own correctly-attributed QueryReport.
//
// Shape:
//
//  * Submit() never blocks on query execution: it enqueues a ticket into
//    a bounded priority queue (priority descending, FIFO within a
//    priority, deadline checked at dispatch time) and returns a future.
//    A full queue rejects immediately — backpressure at the edge instead
//    of unbounded memory growth.
//  * A fixed set of runner threads (max_inflight, bounded by the obs
//    layer's kMaxMetricDomains so every in-flight query can have its own
//    attribution domain) pops tickets and runs them to completion. The
//    admission bound is the concurrency bound: at most max_inflight
//    queries touch the executor, the arenas, or the enclave at once.
//  * Fairness lives in the executor handoff: the server prewarms the pool
//    to the host's core count, applies SGXBENCH_SERVE_WORKER_SHARE as a
//    hard per-gang cap, and sizes each admitted query's gang with
//    GrantedGangSize(), so one heavy Q3 leases a fair slice of workers —
//    not the whole pool — while a hundred cheap Q6s flow past it.
//  * Isolation per query: a fresh ArenaPool over the query's memory
//    resource (trimmed after the query, so chunk accounting balances),
//    an obs attribution domain for the report window, and a QueryConfig
//    whose env-defaulted knobs were resolved once at admission
//    (tpch::ResolvedQueryConfig) — no getenv() deep in operators racing
//    other tenants.
//
// Knobs: SGXBENCH_SERVE_MAX_INFLIGHT, SGXBENCH_SERVE_WORKER_SHARE,
// SGXBENCH_SERVE_MAX_QUEUE (see ServerOptions::FromEnv and README.md).

#ifndef SGXB_SERVE_SERVE_H_
#define SGXB_SERVE_SERVE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "tpch/queries.h"
#include "tpch/tpch_schema.h"
#include "txn/versioned_db.h"

namespace sgxb::serve {

/// \brief Serving configuration. Defaults match FromEnv() with no
/// environment set.
struct ServerOptions {
  /// Queries executing concurrently (= runner threads). Clamped to
  /// [1, obs::kMaxMetricDomains] so every in-flight query gets its own
  /// metrics attribution domain.
  int max_inflight = 8;
  /// Hard cap on any one query's worker-gang width while the server is
  /// alive (0 = no hard cap; fair-share sizing still applies). Forwarded
  /// to exec::Executor::SetMaxWorkersPerGang.
  int worker_share = 0;
  /// Tickets waiting for a runner before Submit() rejects. Bounds memory
  /// under overload; rejected requests fail fast with ResourceExhausted.
  int max_queue = 1024;

  /// \brief SGXBENCH_SERVE_MAX_INFLIGHT / SGXBENCH_SERVE_WORKER_SHARE /
  /// SGXBENCH_SERVE_MAX_QUEUE over the defaults above.
  static ServerOptions FromEnv();
};

/// \brief One query submission.
struct QueryRequest {
  /// Catalog query number (plan/catalog.h — tpch::RunQuery). Ignored
  /// when `plan` is set.
  int query_number = 6;
  /// Ad-hoc plan to run instead of a catalog query (tpch::RunPlan). The
  /// caller owns the plan; it must stay alive until the response future
  /// resolves. Plans are immutable once built, so one plan may back any
  /// number of concurrent requests.
  const plan::Plan* plan = nullptr;
  /// Per-query execution config. num_threads is a *request*: the server
  /// grants min(request, worker share) at dispatch; 0 = "as many as the
  /// fair share allows". arena_pool and obs_domain are server-owned and
  /// overwritten at dispatch.
  tpch::QueryConfig config;
  /// HTAP extension: when non-empty this request is an *update batch*
  /// instead of a query (query_number / plan are ignored) — each op is
  /// committed in order against the server's VersionedTpchDb and
  /// result.count reports how many committed. Requires the server to
  /// have been constructed over a VersionedTpchDb; InvalidArgument
  /// otherwise. Updates share the admission queue and priority rules
  /// with queries, so mixed read/write load contends exactly where a
  /// real HTAP deployment would: in the commit latch, not the scheduler.
  std::vector<txn::UpdateOp> updates;
  /// Higher runs sooner; FIFO within a priority class.
  int priority = 0;
  /// If > 0: a ticket still queued this many milliseconds after Submit()
  /// is dropped (ResourceExhausted) instead of dispatched — stale answers
  /// are worthless to an interactive client and their work would only
  /// delay everyone else.
  double deadline_ms = 0;
};

/// \brief Completion of one query; delivered through the future returned
/// by Submit().
struct QueryResponse {
  /// Rejections (queue full, deadline expired, shutdown, bad query
  /// number) and execution failures both land here.
  Status status = Status::OK();
  /// Valid when status.ok(). result.report is the query's own
  /// domain-attributed QueryReport.
  tpch::QueryResult result;
  double queue_ns = 0;  ///< Submit() -> dispatch.
  double exec_ns = 0;   ///< dispatch -> completion.
  int granted_threads = 0;
  int obs_domain = -1;  ///< attribution domain used (-1: none free)
};

/// \brief Monotonic serving counters plus instantaneous queue state.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;   ///< ran and returned OK
  uint64_t failed = 0;      ///< ran and returned an error
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_deadline = 0;
  int inflight = 0;  ///< queries currently executing
  int queued = 0;    ///< tickets waiting for a runner
};

/// \brief The bounded admission queue, exposed for direct testing:
/// priority descending, FIFO within a priority, bounded size. Thread-safe.
class AdmissionQueue {
 public:
  struct Ticket {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    WallTimer queued;  ///< started at Submit()
  };

  explicit AdmissionQueue(int max_queue);

  /// \brief False (ticket untouched) when the queue is at max_queue or
  /// closed; the ticket is only moved from on success.
  bool Push(Ticket&& ticket);

  /// \brief Blocks until a ticket is available or Close(); false after
  /// close with the queue drained.
  bool Pop(Ticket* out);

  /// \brief Wakes all poppers; Pop drains what is queued, then fails.
  void Close();

  int size() const;

 private:
  const int max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Key: (-priority, arrival seq) so begin() is the highest priority,
  // oldest ticket. A map, not priority_queue: tickets hold promises and
  // must move out on pop.
  std::map<std::pair<int, uint64_t>, Ticket> queue_;
  uint64_t seq_ = 0;
  bool closed_ = false;
};

/// \brief Serves tpch::RunQuery over a shared TpchDb to many concurrent
/// clients. Construction prewarms the executor pool and installs the
/// worker-share cap; destruction drains in-flight queries and restores
/// the executor's uncapped default.
class QueryServer {
 public:
  explicit QueryServer(const tpch::TpchDb& db,
                       ServerOptions options = ServerOptions::FromEnv());
  /// \brief HTAP mode: queries run over pinned snapshots of `vdb` (one
  /// per request, released at completion) and update-batch requests are
  /// admitted alongside them (QueryRequest::updates).
  explicit QueryServer(txn::VersionedTpchDb& vdb,
                       ServerOptions options = ServerOptions::FromEnv());
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// \brief Enqueues a request; the future resolves when the query
  /// completes or is rejected. Never blocks on execution.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// \brief Stops admission, drains queued + in-flight work, joins the
  /// runners. Idempotent; the destructor calls it.
  void Shutdown();

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  void RunnerLoop();
  void Execute(AdmissionQueue::Ticket ticket);
  void StartRunners();

  // Exactly one of these is set: db_ for the read-only mode, vdb_ for
  // HTAP snapshot serving.
  const tpch::TpchDb* db_ = nullptr;
  txn::VersionedTpchDb* vdb_ = nullptr;
  ServerOptions options_;
  AdmissionQueue queue_;
  std::vector<std::thread> runners_;
  int saved_worker_cap_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  bool shutdown_ = false;
};

}  // namespace sgxb::serve

#endif  // SGXB_SERVE_SERVE_H_
