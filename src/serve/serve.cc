#include "serve/serve.h"

#include <algorithm>
#include <utility>

#include "common/env.h"
#include "exec/executor.h"
#include "mem/arena_pool.h"
#include "obs/metrics.h"
#include "obs/query_report.h"
#include "tune/tune.h"

namespace sgxb::serve {

namespace {

int ClampInflight(int n) {
  return std::clamp(n, 1, obs::kMaxMetricDomains);
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions o;
  o.max_inflight = static_cast<int>(
      EnvInt("SGXBENCH_SERVE_MAX_INFLIGHT", o.max_inflight, /*lo=*/1,
             /*hi=*/obs::kMaxMetricDomains));
  o.worker_share = static_cast<int>(
      EnvInt("SGXBENCH_SERVE_WORKER_SHARE", o.worker_share, /*lo=*/0,
             /*hi=*/4096));
  o.max_queue = static_cast<int>(
      EnvInt("SGXBENCH_SERVE_MAX_QUEUE", o.max_queue, /*lo=*/1,
             /*hi=*/1 << 20));
  return o;
}

// --- AdmissionQueue -----------------------------------------------------

AdmissionQueue::AdmissionQueue(int max_queue)
    : max_queue_(std::max(1, max_queue)) {}

bool AdmissionQueue::Push(Ticket&& ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || static_cast<int>(queue_.size()) >= max_queue_) {
      return false;
    }
    queue_.emplace(std::make_pair(-ticket.request.priority, seq_++),
                   std::move(ticket));
  }
  cv_.notify_one();
  return true;
}

bool AdmissionQueue::Pop(Ticket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  auto it = queue_.begin();
  *out = std::move(it->second);
  queue_.erase(it);
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

int AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

// --- QueryServer --------------------------------------------------------

QueryServer::QueryServer(const tpch::TpchDb& db, ServerOptions options)
    : db_(&db), options_(options), queue_(options.max_queue) {
  StartRunners();
}

QueryServer::QueryServer(txn::VersionedTpchDb& vdb, ServerOptions options)
    : vdb_(&vdb), options_(options), queue_(options.max_queue) {
  StartRunners();
}

void QueryServer::StartRunners() {
  options_.max_inflight = ClampInflight(options_.max_inflight);
  exec::Executor& ex = exec::Executor::Default();
  // Prewarm to full capacity up front: otherwise the pool is sized by the
  // first (possibly single-threaded) query and every later gang grows it
  // under the dispatch lock mid-burst.
  ex.EnsurePoolSize(exec::Executor::DefaultParallelism());
  saved_worker_cap_ = ex.max_workers_per_gang();
  if (options_.worker_share > 0) {
    ex.SetMaxWorkersPerGang(options_.worker_share);
  }
  runners_.reserve(options_.max_inflight);
  for (int i = 0; i < options_.max_inflight; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Runners drain what is already queued, then exit.
  queue_.Close();
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
  exec::Executor::Default().SetMaxWorkersPerGang(saved_worker_cap_);
}

std::future<QueryResponse> QueryServer::Submit(QueryRequest request) {
  AdmissionQueue::Ticket ticket;
  ticket.request = std::move(request);
  std::future<QueryResponse> future = ticket.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    if (shutdown_) {
      ++stats_.rejected_queue_full;
      QueryResponse r;
      r.status = Status::ResourceExhausted("server is shut down");
      ticket.promise.set_value(std::move(r));
      return future;
    }
  }
  if (!queue_.Push(std::move(ticket))) {
    // Push only moves from the ticket on success, so the promise is
    // still intact here.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_queue_full;
    QueryResponse r;
    r.status = Status::ResourceExhausted("serve queue full");
    ticket.promise.set_value(std::move(r));
  }
  return future;
}

void QueryServer::RunnerLoop() {
  AdmissionQueue::Ticket ticket;
  while (queue_.Pop(&ticket)) {
    Execute(std::move(ticket));
    ticket = AdmissionQueue::Ticket();
  }
}

void QueryServer::Execute(AdmissionQueue::Ticket ticket) {
  QueryResponse response;
  response.queue_ns = static_cast<double>(ticket.queued.ElapsedNanos());

  const QueryRequest& req = ticket.request;
  if (req.deadline_ms > 0 &&
      response.queue_ns > req.deadline_ms * 1e6) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_deadline;
    response.status =
        Status::ResourceExhausted("deadline expired while queued");
    ticket.promise.set_value(std::move(response));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.inflight;
  }
  // Publish the in-flight count to the adaptive controller: the tuning
  // cache keys its learned settings on the concurrency band, so the same
  // query converges separately for solo and saturated serving.
  tune::AddInflight(1);

  exec::Executor& ex = exec::Executor::Default();
  obs::Registry& registry = obs::Registry::Global();
  // Everything this query needs exclusively: an attribution domain for
  // its report (max_inflight <= kMaxMetricDomains, so a free domain
  // always exists unless an outside caller is holding some — then the
  // query runs unattributed rather than failing) and a chunk pool whose
  // accounting is entirely this query's own.
  const int domain = registry.AcquireDomain();
  response.obs_domain = domain;

  tpch::QueryConfig config = tpch::ResolvedQueryConfig(req.config);
  config.obs_domain = domain;
  mem::ArenaPool pool(tpch::EffectiveResource(config));
  config.arena_pool = &pool;

  // The request's thread count is a want, not a grant: share-aware sizing
  // keeps a heavy query from leasing the whole pool away from the cheap
  // ones behind it.
  const int want = config.num_threads > 0 ? config.num_threads
                                          : exec::Executor::DefaultParallelism();
  config.num_threads = ex.GrantedGangSize(want);
  response.granted_threads = config.num_threads;

  WallTimer exec_timer;
  Result<tpch::QueryResult> result = [&]() -> Result<tpch::QueryResult> {
    if (!req.updates.empty()) {
      // Update batch: commit in submission order under the db's commit
      // latch. The report window wraps the batch so the latch's
      // park/wake avalanche is attributed to this request's domain.
      if (vdb_ == nullptr) {
        return Status::InvalidArgument(
            "update batch submitted to a read-only server (construct "
            "QueryServer over a txn::VersionedTpchDb)");
      }
      obs::QueryReportScope scope("update_batch", domain);
      tpch::QueryResult r;
      {
        obs::ScopedMetricDomain attributed(domain);
        for (const txn::UpdateOp& op : req.updates) {
          SGXB_RETURN_NOT_OK(vdb_->Commit(op));
          ++r.count;
        }
      }
      r.report = scope.Finish();
      r.host_ns = r.report.wall_ns;
      return r;
    }
    if (vdb_ != nullptr) {
      // Snapshot serving: pin an epoch for the query's lifetime; the
      // view is a consistent cut no concurrent commit can disturb.
      auto snap = vdb_->OpenSnapshot();
      if (!snap.ok()) return snap.status();
      return req.plan != nullptr
                 ? tpch::RunPlan(*req.plan, snap.value().view(), config)
                 : tpch::RunQuery(req.query_number, snap.value().view(),
                                  config);
    }
    return req.plan != nullptr
               ? tpch::RunPlan(*req.plan, *db_, config)
               : tpch::RunQuery(req.query_number, *db_, config);
  }();
  response.exec_ns = static_cast<double>(exec_timer.ElapsedNanos());

  // Release per-query state before delivering: a client that reacts to
  // the future must observe the pool drained and the domain free.
  pool.Trim();
  if (domain >= 0) registry.ReleaseDomain(domain);

  if (result.ok()) {
    response.result = std::move(result).value();
  } else {
    response.status = result.status();
  }
  tune::AddInflight(-1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.inflight;
    ++(response.status.ok() ? stats_.completed : stats_.failed);
  }
  ticket.promise.set_value(std::move(response));
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.queued = queue_.size();
  return s;
}

}  // namespace sgxb::serve
