// Paced update-stream driver for the HTAP mixed workload (docs/htap.md).
//
// UpdateFeed commits single-row updates against a VersionedTpchDb at a
// configurable aggregate rate with configurable key skew, from one or
// more writer threads. It is the transactional half of bench_htap_mixed:
// the analytical half scans snapshots while the feed hammers the commit
// latch, so the sgx_mutex park/wake avalanche and the COW/EDMM churn show
// up under a controlled, reproducible load.
//
// Pacing is a per-thread token schedule: each writer computes its share
// of the target rate and sleeps to its next tick between small batches,
// so the offered load is rate-shaped rather than closed-loop (a stalled
// commit latch shows up as missed rate + latency, like a real ingest
// pipeline). Keys are Zipf-distributed (theta = 0 uniform) and scrambled
// with a multiplicative hash so hot keys spread across version chunks.

#ifndef SGXB_TXN_UPDATE_FEED_H_
#define SGXB_TXN_UPDATE_FEED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "txn/versioned_db.h"

namespace sgxb::txn {

struct UpdateFeedOptions {
  /// Target aggregate commit rate over all writer threads.
  double rows_per_sec = 10000;
  /// Zipf theta for row selection: 0 = uniform, -> 1 = few hot rows
  /// (hence few hot chunks: maximal latch + COW contention).
  double zipf_theta = 0.0;
  /// Writer threads splitting the rate.
  int threads = 1;
  uint64_t seed = 42;
  /// Attribution domain for the feed's parks / COW counters (-1 = none);
  /// lets the bench separate feed-side from query-side avalanche cost.
  int obs_domain = -1;

  /// \brief SGXBENCH_TXN_FEED_RPS / SGXBENCH_TXN_SKEW /
  /// SGXBENCH_TXN_FEED_THREADS over the defaults above.
  static UpdateFeedOptions FromEnv();
};

class UpdateFeed {
 public:
  struct Stats {
    uint64_t committed = 0;
    uint64_t failed = 0;
    double achieved_rps = 0;  ///< committed / wall seconds while running
    uint64_t p50_ns = 0;      ///< commit latency (log2-bucket upper bound)
    uint64_t p99_ns = 0;
    uint64_t max_ns = 0;
  };

  UpdateFeed(VersionedTpchDb* db, UpdateFeedOptions options);
  ~UpdateFeed();  ///< stops and joins if still running

  UpdateFeed(const UpdateFeed&) = delete;
  UpdateFeed& operator=(const UpdateFeed&) = delete;

  void Start();
  /// \brief Stops the writers and joins them. Idempotent.
  void Stop();
  bool running() const { return running_; }

  Stats stats() const;

 private:
  struct Writer;
  void WriterLoop(Writer* w);

  VersionedTpchDb* db_;
  UpdateFeedOptions options_;
  std::vector<std::unique_ptr<Writer>> writers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  WallTimer run_timer_;
  double elapsed_sec_ = 0;  ///< Start -> Stop window (set in Stop)
};

}  // namespace sgxb::txn

#endif  // SGXB_TXN_UPDATE_FEED_H_
