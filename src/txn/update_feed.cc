#include "txn/update_feed.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "tpch/tpch_schema.h"

namespace sgxb::txn {

namespace {

/// \brief Log2 bucket of a latency sample, like obs::Histogram.
int Bucket(uint64_t ns) {
  return ns == 0 ? 0 : 63 - __builtin_clzll(ns);
}

uint64_t ScrambleRow(uint64_t key, uint64_t n) {
  // Fibonacci hashing: repeated draws of a hot Zipf key stay hot, but
  // consecutive key ranks land in unrelated version chunks.
  return (key * 0x9e3779b97f4a7c15ull) % n;
}

}  // namespace

UpdateFeedOptions UpdateFeedOptions::FromEnv() {
  UpdateFeedOptions o;
  o.rows_per_sec = EnvDouble("SGXBENCH_TXN_FEED_RPS", o.rows_per_sec,
                             /*lo=*/0.0, /*hi=*/1e9);
  o.zipf_theta = EnvDouble("SGXBENCH_TXN_SKEW", o.zipf_theta,
                           /*lo=*/0.0, /*hi=*/0.9999);
  o.threads = static_cast<int>(
      EnvInt("SGXBENCH_TXN_FEED_THREADS", o.threads, /*lo=*/1, /*hi=*/256));
  return o;
}

struct UpdateFeed::Writer {
  int index = 0;
  double rows_per_sec = 0;
  // Written by the writer thread, read by stats() after Stop() and
  // (monotonic counters only) while running.
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> max_ns{0};
  std::atomic<uint64_t> buckets[64] = {};
};

UpdateFeed::UpdateFeed(VersionedTpchDb* db, UpdateFeedOptions options)
    : db_(db), options_(options) {
  options_.threads = std::max(1, options_.threads);
}

UpdateFeed::~UpdateFeed() { Stop(); }

void UpdateFeed::Start() {
  if (running_ || options_.rows_per_sec <= 0) return;
  stop_.store(false, std::memory_order_relaxed);
  running_ = true;
  elapsed_sec_ = 0;
  run_timer_.Restart();
  writers_.clear();
  threads_.clear();
  for (int i = 0; i < options_.threads; ++i) {
    auto w = std::make_unique<Writer>();
    w->index = i;
    w->rows_per_sec = options_.rows_per_sec / options_.threads;
    writers_.push_back(std::move(w));
  }
  threads_.reserve(writers_.size());
  for (auto& w : writers_) {
    threads_.emplace_back([this, wp = w.get()] { WriterLoop(wp); });
  }
}

void UpdateFeed::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  elapsed_sec_ = run_timer_.ElapsedSeconds();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_ = false;
}

void UpdateFeed::WriterLoop(Writer* w) {
  obs::ScopedMetricDomain domain(options_.obs_domain);
  uint64_t seed_state = options_.seed + 0x1000ull * (w->index + 1);
  Xoshiro256 rng(SplitMix64(seed_state));
  // One key space sized for the largest table; per-op it is folded onto
  // the target column's rows so the same skew shape drives every column.
  const uint64_t key_space =
      std::max<uint64_t>(1, std::max(db_->lineitem_rows(),
                                     db_->orders_rows()));
  ZipfGenerator zipf(key_space, options_.zipf_theta,
                     SplitMix64(seed_state));

  // Rate shaping: fire a small batch every tick. Batches keep the tick
  // period >= ~1ms so the pacing does not degenerate into a spin loop at
  // high rates.
  const double rps = w->rows_per_sec;
  const uint64_t batch =
      std::max<uint64_t>(1, static_cast<uint64_t>(rps / 1000.0));
  const auto tick = std::chrono::nanoseconds(
      static_cast<uint64_t>(1e9 * static_cast<double>(batch) / rps));
  auto next = std::chrono::steady_clock::now();

  while (!stop_.load(std::memory_order_relaxed)) {
    for (uint64_t i = 0; i < batch; ++i) {
      UpdateOp op;
      op.column = static_cast<UpdateColumn>(
          (w->committed.load(std::memory_order_relaxed) + i) %
          kNumUpdateColumns);
      const uint64_t rows = db_->RowsFor(op.column);
      if (rows == 0) continue;
      op.row = ScrambleRow(zipf.Next(), key_space) % rows;
      switch (op.column) {
        case UpdateColumn::kLQuantity:
          op.value = 1 + static_cast<uint32_t>(rng.NextBounded(50));
          break;
        case UpdateColumn::kLExtendedPrice:
          op.value = 100 + static_cast<uint32_t>(rng.NextBounded(10000000));
          break;
        case UpdateColumn::kLDiscount:
          op.value = static_cast<uint32_t>(rng.NextBounded(11));
          break;
        case UpdateColumn::kOOrderDate:
          op.value = static_cast<uint32_t>(
              rng.NextBounded(tpch::kDate19980802 + 1));
          break;
      }
      WallTimer t;
      const Status s = db_->Commit(op);
      const uint64_t ns = t.ElapsedNanos();
      if (s.ok()) {
        w->committed.fetch_add(1, std::memory_order_relaxed);
        w->buckets[Bucket(ns)].fetch_add(1, std::memory_order_relaxed);
        uint64_t prev = w->max_ns.load(std::memory_order_relaxed);
        while (ns > prev && !w->max_ns.compare_exchange_weak(
                                prev, ns, std::memory_order_relaxed)) {
        }
      } else {
        w->failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    next += tick;
    const auto now = std::chrono::steady_clock::now();
    if (next > now) {
      std::this_thread::sleep_until(next);
    } else {
      // Behind schedule (commit latch contention): don't accumulate debt,
      // or a brief stall would be followed by an unbounded burst.
      next = now;
    }
  }
}

UpdateFeed::Stats UpdateFeed::stats() const {
  Stats s;
  uint64_t buckets[64] = {};
  for (const auto& w : writers_) {
    s.committed += w->committed.load(std::memory_order_relaxed);
    s.failed += w->failed.load(std::memory_order_relaxed);
    s.max_ns = std::max(s.max_ns, w->max_ns.load(std::memory_order_relaxed));
    for (int b = 0; b < 64; ++b) {
      buckets[b] += w->buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (elapsed_sec_ > 0) {
    s.achieved_rps = static_cast<double>(s.committed) / elapsed_sec_;
  }
  auto quantile = [&](double q) -> uint64_t {
    const uint64_t total = s.committed;
    if (total == 0) return 0;
    const uint64_t want =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
    uint64_t seen = 0;
    for (int b = 0; b < 64; ++b) {
      seen += buckets[b];
      if (seen >= want) return b >= 63 ? ~0ull : (2ull << b);
    }
    return s.max_ns;
  };
  s.p50_ns = quantile(0.50);
  s.p99_ns = quantile(0.99);
  return s;
}

}  // namespace sgxb::txn
