#include "txn/versioned_db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "common/env.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace sgxb::txn {

namespace {

obs::Counter* CtrCommits() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnCommits);
  return c;
}
obs::Counter* CtrVersionsCreated() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnVersionsCreated);
  return c;
}
obs::Counter* CtrVersionsRetired() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnVersionsRetired);
  return c;
}
obs::Counter* CtrVersionsReclaimed() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnVersionsReclaimed);
  return c;
}
obs::Counter* CtrCowBytes() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnCowBytes);
  return c;
}
obs::Counter* CtrReclaimedBytes() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTxnReclaimedBytes);
  return c;
}
obs::Histogram* HistCommitNs() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram(obs::kHistTxnCommitNs);
  return h;
}

}  // namespace

TxnOptions TxnOptions::FromEnv() {
  TxnOptions o;
  o.chunk_rows = EnvUint("SGXBENCH_TXN_CHUNK_ROWS", o.chunk_rows,
                         /*lo=*/64, /*hi=*/1ull << 22);
  return o;
}

VersionedTpchDb::VersionedTpchDb(const tpch::TpchDbView& base,
                                 TxnOptions options)
    : base_(base), options_(options) {
  if (options_.resource == nullptr) {
    options_.resource = mem::SimulatedEnclave();
  }
  const size_t cr = options_.chunk_rows;
  mem::MemoryResource* res = options_.resource;
  l_quantity_ = std::make_unique<VersionedColumn<uint32_t>>(
      base_.lineitem.l_quantity, cr, res);
  l_extendedprice_ = std::make_unique<VersionedColumn<uint32_t>>(
      base_.lineitem.l_extendedprice, cr, res);
  l_discount_ = std::make_unique<VersionedColumn<uint32_t>>(
      base_.lineitem.l_discount, cr, res);
  o_orderdate_ = std::make_unique<VersionedColumn<uint32_t>>(
      base_.orders.o_orderdate, cr, res);
}

VersionedTpchDb::VersionedTpchDb(const tpch::TpchDb& db, TxnOptions options)
    : VersionedTpchDb(tpch::ViewOf(db), options) {}

VersionedTpchDb::~VersionedTpchDb() {
  assert(epochs_.active_snapshots() == 0 &&
         "snapshot still pinned at VersionedTpchDb destruction");
  ReclaimQuiescent();
  assert(retired_head_ == nullptr &&
         "retired versions leaked at destruction");
}

Result<VersionedTpchDb::Snapshot> VersionedTpchDb::OpenSnapshot() {
  Snapshot snap;
  snap.pin_ = SnapshotHandle(&epochs_);
  if (!snap.pin_.ok()) {
    return Status::ResourceExhausted(
        "all " + std::to_string(EpochRegistry::kMaxSnapshots) +
        " snapshot slots are pinned");
  }
  snap.view_ = ViewAt(snap.pin_.epoch());
  return snap;
}

tpch::TpchDbView VersionedTpchDb::ViewAt(uint64_t epoch) const {
  tpch::TpchDbView v = base_;
  v.lineitem.l_quantity = l_quantity_->ViewAt(epoch);
  v.lineitem.l_extendedprice = l_extendedprice_->ViewAt(epoch);
  v.lineitem.l_discount = l_discount_->ViewAt(epoch);
  v.orders.o_orderdate = o_orderdate_->ViewAt(epoch);
  return v;
}

Status VersionedTpchDb::Commit(const UpdateOp& op) {
  WallTimer timer;  // includes the latch wait — that is the p99 exhibit
  std::lock_guard<sgx::SgxSdkMutex> latch(commit_mu_);
  VersionedColumn<uint32_t>* col = nullptr;
  switch (op.column) {
    case UpdateColumn::kLQuantity:
      col = l_quantity_.get();
      break;
    case UpdateColumn::kLExtendedPrice:
      col = l_extendedprice_.get();
      break;
    case UpdateColumn::kLDiscount:
      col = l_discount_.get();
      break;
    case UpdateColumn::kOOrderDate:
      col = o_orderdate_.get();
      break;
  }
  if (col == nullptr) {
    return Status::InvalidArgument("unknown update column");
  }

  const uint64_t epoch = epochs_.current() + 1;
  RetiredVersion* retired = nullptr;
  SGXB_RETURN_NOT_OK(col->Apply(op.row, op.value, epoch, &retired));
  epochs_.Publish(epoch);

  const size_t cbegin = (op.row / col->chunk_rows()) * col->chunk_rows();
  const size_t cow =
      (std::min(col->num_values(), cbegin + col->chunk_rows()) - cbegin) *
      sizeof(uint32_t);
  commits_.fetch_add(1, std::memory_order_relaxed);
  versions_created_.fetch_add(1, std::memory_order_relaxed);
  cow_bytes_.fetch_add(cow, std::memory_order_relaxed);
  CtrCommits()->Increment();
  CtrVersionsCreated()->Increment();
  CtrCowBytes()->Add(cow);

  if (retired != nullptr) {
    retired->retire_next = nullptr;
    if (retired_tail_ == nullptr) {
      retired_head_ = retired_tail_ = retired;
    } else {
      retired_tail_->retire_next = retired;
      retired_tail_ = retired;
    }
    versions_retired_.fetch_add(1, std::memory_order_relaxed);
    CtrVersionsRetired()->Increment();
  }

  if (options_.reclaim_on_commit) ReclaimLocked();
  HistCommitNs()->Record(timer.ElapsedNanos());
  return Status::OK();
}

uint64_t VersionedTpchDb::ReclaimLocked() {
  // The retire list is epoch-ordered (commits append under the latch), so
  // reclamation pops from the head until it hits the first version some
  // pinned snapshot can still reach — amortized O(1) per commit.
  const uint64_t min_pinned = epochs_.MinPinned();
  uint64_t n = 0;
  while (retired_head_ != nullptr &&
         retired_head_->retire_epoch <= min_pinned) {
    RetiredVersion* r = retired_head_;
    retired_head_ = r->retire_next;
    if (retired_head_ == nullptr) retired_tail_ = nullptr;
    r->Unlink();
    versions_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_bytes_.fetch_add(r->bytes, std::memory_order_relaxed);
    CtrVersionsReclaimed()->Increment();
    CtrReclaimedBytes()->Add(r->bytes);
    delete r;  // typed dtor frees the chunk through the MemoryResource
    ++n;
  }
  return n;
}

uint64_t VersionedTpchDb::ReclaimQuiescent() {
  std::lock_guard<sgx::SgxSdkMutex> latch(commit_mu_);
  return ReclaimLocked();
}

Status VersionedTpchDb::Drain(uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    {
      std::lock_guard<sgx::SgxSdkMutex> latch(commit_mu_);
      ReclaimLocked();
      if (retired_head_ == nullptr) return Status::OK();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::ResourceExhausted(
          "retired versions still reachable after " +
          std::to_string(timeout_ms) + " ms (snapshot left pinned?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TxnStats VersionedTpchDb::stats() const {
  TxnStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.versions_created = versions_created_.load(std::memory_order_relaxed);
  s.versions_retired = versions_retired_.load(std::memory_order_relaxed);
  s.versions_reclaimed =
      versions_reclaimed_.load(std::memory_order_relaxed);
  s.cow_bytes = cow_bytes_.load(std::memory_order_relaxed);
  s.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
  s.epoch = epochs_.current();
  s.active_snapshots = epochs_.active_snapshots();
  s.live_version_bytes = s.cow_bytes - s.reclaimed_bytes;
  s.retired_pending = s.versions_retired - s.versions_reclaimed;
  return s;
}

}  // namespace sgxb::txn
