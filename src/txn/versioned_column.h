// Copy-on-write version chunks over a base column (docs/htap.md).
//
// A VersionedColumn<T> divides its base column into fixed-size chunks and
// keeps, per chunk, a newest-first chain of committed version arrays.  A
// scan at pinned epoch E resolves each chunk to the newest version with
// commit epoch <= E, or to the base column when no such version exists —
// exactly the storage::VersionSource contract, so ColumnView carries the
// overlay and every existing operator reads a consistent cut for free.
//
// Writes are always copy-on-write: a single-row update copies the row's
// whole chunk (from the current newest version, or from the base — which
// may itself be paged through the buffer manager), patches the row, and
// publishes the copy as the new chain head.  In-place mutation of the
// newest version is never safe here: any pinned epoch is >= every
// committed epoch at pin time, so some snapshot may be entitled to the
// pre-image of *any* committed version.  The resulting allocation churn
// is not an implementation wart — it is the EDMM-visible write
// amplification the HTAP bench exists to measure.
//
// Concurrency contract: Apply() and Unlink() only under the owning
// table's commit latch; ChunkVersion() from any thread holding an epoch
// pin.  Superseded nodes stay linked in the chain (older snapshots still
// walk through them) until the table's reclaimer proves quiescence and
// unlinks + frees them (RetiredVersion / VersionedTpchDb::Commit).

#ifndef SGXB_TXN_VERSIONED_COLUMN_H_
#define SGXB_TXN_VERSIONED_COLUMN_H_

#include <atomic>
#include <cstring>
#include <memory>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "mem/memory_resource.h"
#include "storage/column_view.h"
#include "storage/version_source.h"

namespace sgxb::txn {

/// \brief Type-erased superseded version awaiting reclamation. Commits
/// append these (oldest first) to the table's retire list; once the epoch
/// registry proves no snapshot can reach one, the reclaimer calls
/// Unlink() to splice it out of its chain and deletes it (the typed
/// destructor returns the chunk buffer through its MemoryResource, which
/// is where EDMM trim accounting happens).
class RetiredVersion {
 public:
  virtual ~RetiredVersion() = default;
  /// \brief Splices this node out of its version chain. Only under the
  /// commit latch, and only once MinPinned() >= retire_epoch.
  virtual void Unlink() = 0;

  RetiredVersion* retire_next = nullptr;
  uint64_t retire_epoch = 0;  ///< epoch of the commit that superseded it
  size_t bytes = 0;           ///< chunk buffer size (churn accounting)
};

template <typename T>
class VersionedColumn final : public storage::VersionSource<T> {
 public:
  /// \brief Overlays `base` (resident or paged) with empty chains.
  /// `resource` owns every version chunk allocation; it must outlive the
  /// column.
  VersionedColumn(storage::ColumnView<T> base, size_t chunk_rows,
                  mem::MemoryResource* resource)
      : base_(base),
        chunk_rows_(chunk_rows),
        num_chunks_((base.num_values() + chunk_rows - 1) / chunk_rows),
        resource_(resource),
        chains_(std::make_unique<std::atomic<Node*>[]>(num_chunks_)) {
    for (size_t c = 0; c < num_chunks_; ++c) {
      chains_[c].store(nullptr, std::memory_order_relaxed);
    }
  }

  /// Requires quiescence: the owner reclaims all retired versions first,
  /// so each chain is at most its (never-retired) head node.
  ~VersionedColumn() override {
    for (size_t c = 0; c < num_chunks_; ++c) {
      Node* n = chains_[c].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
      }
    }
  }

  VersionedColumn(const VersionedColumn&) = delete;
  VersionedColumn& operator=(const VersionedColumn&) = delete;

  size_t chunk_rows() const override { return chunk_rows_; }
  size_t num_values() const { return base_.num_values(); }
  const storage::ColumnView<T>& base() const { return base_; }

  const T* ChunkVersion(size_t chunk, uint64_t epoch) const override {
    const Node* n = chains_[chunk].load(std::memory_order_acquire);
    while (n != nullptr && n->epoch > epoch) {
      n = n->next.load(std::memory_order_acquire);
    }
    return n != nullptr ? n->values.template As<T>() : nullptr;
  }

  /// \brief View of this column at `epoch` (caller keeps it pinned).
  storage::ColumnView<T> ViewAt(uint64_t epoch) const {
    return storage::ColumnView<T>(this, epoch, base_);
  }

  /// \brief Commit-latch-only: installs `value` at `row` as commit epoch
  /// `epoch` by COWing the row's chunk; the superseded head (if any) is
  /// stamped with retire_epoch = `epoch` and appended to `*retired`.
  /// On allocation failure nothing is published.
  Status Apply(size_t row, T value, uint64_t epoch,
               RetiredVersion** retired) {
    if (row >= base_.num_values()) {
      return Status::InvalidArgument("update row out of column range");
    }
    const size_t c = row / chunk_rows_;
    const size_t cbegin = c * chunk_rows_;
    const size_t cend =
        std::min(base_.num_values(), cbegin + chunk_rows_);
    const size_t nbytes = (cend - cbegin) * sizeof(T);

    auto buf = resource_->Allocate(nbytes);
    if (!buf.ok()) return buf.status();
    Node* node = new Node;
    node->values = std::move(buf).value();
    node->epoch = epoch;
    node->bytes = nbytes;
    T* dst = node->values.template As<T>();

    Node* head = chains_[c].load(std::memory_order_relaxed);
    if (head != nullptr) {
      std::memcpy(dst, head->values.template As<T>(), nbytes);
    } else {
      // First version of this chunk: copy from the base, which may be
      // paged (ForEachRun pins/unpins the partitions it crosses).
      Status s = storage::ForEachRun(
          base_, cbegin, cend, [&](const T* run, size_t abs, size_t n) {
            std::memcpy(dst + (abs - cbegin), run, n * sizeof(T));
          });
      if (!s.ok()) {
        delete node;
        return s;
      }
    }
    dst[row - cbegin] = value;

    node->next.store(head, std::memory_order_relaxed);
    node->owner = this;
    node->chunk = c;
    chains_[c].store(node, std::memory_order_release);
    if (head != nullptr) {
      head->retire_epoch = epoch;
      *retired = head;
    } else {
      *retired = nullptr;
    }
    return Status::OK();
  }

 private:
  struct Node final : RetiredVersion {
    uint64_t epoch = 0;                  ///< commit that created it
    std::atomic<Node*> next{nullptr};    ///< next-older version
    AlignedBuffer values;
    VersionedColumn<T>* owner = nullptr;
    size_t chunk = 0;

    void Unlink() final {
      // The successor (the commit that retired this node) is the chain
      // node directly in front of us; it is reclaimed strictly after us
      // (retire lists are epoch-ordered), so walking to it is safe.
      Node* next_older = next.load(std::memory_order_relaxed);
      Node* cur = owner->chains_[chunk].load(std::memory_order_relaxed);
      if (cur == this) {
        owner->chains_[chunk].store(next_older, std::memory_order_release);
        return;
      }
      while (cur->next.load(std::memory_order_relaxed) != this) {
        cur = cur->next.load(std::memory_order_relaxed);
      }
      cur->next.store(next_older, std::memory_order_release);
    }
  };

  storage::ColumnView<T> base_;
  const size_t chunk_rows_;
  const size_t num_chunks_;
  mem::MemoryResource* resource_;
  std::unique_ptr<std::atomic<Node*>[]> chains_;
};

}  // namespace sgxb::txn

#endif  // SGXB_TXN_VERSIONED_COLUMN_H_
