// Live-update HTAP front of a TPC-H database (docs/htap.md).
//
// VersionedTpchDb wraps a (resident or paged) TpchDbView and makes the
// paper's four "transactionally hot" numeric columns updatable —
// l_quantity, l_extendedprice, l_discount, o_orderdate — through
// single-row serializable commits, while analytical queries keep running
// unchanged over TpchDbView snapshots:
//
//  * Commit(op) takes the commit latch — deliberately the paper-faithful
//    sgx::SgxSdkMutex, so HTAP write contention exercises the Figure 10
//    park/wake-OCALL avalanche and is counted per attribution domain —
//    COWs the row's version chunk, publishes the next commit epoch, and
//    retires the superseded chunk onto an epoch-ordered reclaim list.
//  * OpenSnapshot() pins the current epoch (txn::EpochRegistry) and hands
//    out a TpchDbView whose hot columns carry (VersionSource, epoch)
//    overlays; every query body, fused pipeline, and planner path reads a
//    consistent cut for the snapshot's lifetime.
//  * Reclamation is epoch-based: a retired chunk is freed (through the
//    configured mem::MemoryResource, so EDMM trim accounting sees the
//    churn) once the registry's minimum pinned epoch reaches its retiring
//    commit. Commits reclaim amortized in-line; ReclaimQuiescent() /
//    Drain() are for tests and teardown.
//
// All activity is published to the obs registry (txn.* counters,
// txn.commit_ns histogram) and surfaced per query in QueryReport.

#ifndef SGXB_TXN_VERSIONED_DB_H_
#define SGXB_TXN_VERSIONED_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/status.h"
#include "mem/memory_resource.h"
#include "sgx/sgx_mutex.h"
#include "tpch/db_view.h"
#include "txn/epoch.h"
#include "txn/versioned_column.h"

namespace sgxb::txn {

/// \brief The updatable columns. Only numeric measure/date columns are
/// writable: key columns stay immutable so join structure is stable and
/// snapshots differ only in values, never in cardinalities.
enum class UpdateColumn : uint8_t {
  kLQuantity = 0,
  kLExtendedPrice = 1,
  kLDiscount = 2,
  kOOrderDate = 3,
};
inline constexpr int kNumUpdateColumns = 4;

/// \brief One single-row write. `row` indexes lineitem for the l_*
/// columns and orders for kOOrderDate.
struct UpdateOp {
  UpdateColumn column = UpdateColumn::kLQuantity;
  uint64_t row = 0;
  uint32_t value = 0;
};

struct TxnOptions {
  /// Rows per version chunk: the COW granule. Smaller chunks mean less
  /// write amplification per commit but more chain walks per scan.
  size_t chunk_rows = 4096;
  /// Resource owning version-chunk memory (null = mem::SimulatedEnclave();
  /// pass mem::ForEnclave(e) to charge a live enclave and pay EDMM costs).
  mem::MemoryResource* resource = nullptr;
  /// Reclaim quiescent retired chunks inside each commit (amortized,
  /// O(1) per commit since the retire list is epoch-ordered). Disable for
  /// tests that want to stage reclamation explicitly.
  bool reclaim_on_commit = true;

  /// \brief SGXBENCH_TXN_CHUNK_ROWS over the defaults above.
  static TxnOptions FromEnv();
};

/// \brief Monotonic write-path counters (process-lifetime totals for this
/// db; the obs registry carries the same series for report attribution).
struct TxnStats {
  uint64_t commits = 0;
  uint64_t versions_created = 0;
  uint64_t versions_retired = 0;
  uint64_t versions_reclaimed = 0;
  uint64_t cow_bytes = 0;        ///< bytes allocated for version chunks
  uint64_t reclaimed_bytes = 0;  ///< bytes returned through the resource
  uint64_t epoch = 0;            ///< current commit epoch
  int active_snapshots = 0;
  /// created - reclaimed: chunk bytes currently live (heads + pending).
  uint64_t live_version_bytes = 0;
  /// retired - reclaimed: versions waiting on pinned snapshots.
  uint64_t retired_pending = 0;
};

class VersionedTpchDb {
 public:
  /// \brief Wraps `base` (whose columns may be resident or paged; the
  /// underlying storage must outlive this object).
  explicit VersionedTpchDb(const tpch::TpchDbView& base,
                           TxnOptions options = {});
  /// \brief Convenience: all-resident base.
  explicit VersionedTpchDb(const tpch::TpchDb& db, TxnOptions options = {});

  /// Reclaims everything; requires no snapshot pinned (asserted).
  ~VersionedTpchDb();

  VersionedTpchDb(const VersionedTpchDb&) = delete;
  VersionedTpchDb& operator=(const VersionedTpchDb&) = delete;

  /// \brief A pinned, consistent cut: `view()` resolves every column to
  /// the state as of `epoch()` until the snapshot is destroyed.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&&) = default;
    Snapshot& operator=(Snapshot&&) = default;

    const tpch::TpchDbView& view() const { return view_; }
    uint64_t epoch() const { return pin_.epoch(); }

   private:
    friend class VersionedTpchDb;
    SnapshotHandle pin_;
    tpch::TpchDbView view_;
  };

  /// \brief Pins the current epoch. ResourceExhausted when all
  /// EpochRegistry::kMaxSnapshots slots are pinned.
  Result<Snapshot> OpenSnapshot();

  /// \brief View at an explicit epoch — the caller is responsible for
  /// keeping that epoch pinned (tests; OpenSnapshot is the safe API).
  tpch::TpchDbView ViewAt(uint64_t epoch) const;

  /// \brief Serializable single-row update: takes the commit latch, COWs
  /// the row's chunk at the next epoch, publishes, retires the
  /// superseded version. InvalidArgument on out-of-range rows.
  Status Commit(const UpdateOp& op);

  /// \brief Frees every retired version no pinned snapshot can reach;
  /// returns how many were reclaimed. Takes the commit latch.
  uint64_t ReclaimQuiescent();

  /// \brief Reclaims until the retire list is empty, waiting for pinned
  /// snapshots to release; ResourceExhausted after `timeout_ms`.
  Status Drain(uint64_t timeout_ms = 10000);

  TxnStats stats() const;
  EpochRegistry& epochs() { return epochs_; }
  const tpch::TpchDbView& base() const { return base_; }
  size_t lineitem_rows() const { return base_.lineitem.num_rows; }
  size_t orders_rows() const { return base_.orders.num_rows; }
  /// \brief Rows addressable by ops against `column`.
  size_t RowsFor(UpdateColumn column) const {
    return column == UpdateColumn::kOOrderDate ? orders_rows()
                                               : lineitem_rows();
  }

 private:
  uint64_t ReclaimLocked();  ///< under commit_mu_

  tpch::TpchDbView base_;
  TxnOptions options_;
  EpochRegistry epochs_;

  // The four hot columns. unique_ptr: VersionedColumn is neither movable
  // nor default-constructible (it owns atomics).
  std::unique_ptr<VersionedColumn<uint32_t>> l_quantity_;
  std::unique_ptr<VersionedColumn<uint32_t>> l_extendedprice_;
  std::unique_ptr<VersionedColumn<uint32_t>> l_discount_;
  std::unique_ptr<VersionedColumn<uint32_t>> o_orderdate_;

  // Commit latch: the paper-faithful SDK mutex, so write contention
  // parks/wakes exactly like Figure 10 and is counted per domain.
  sgx::SgxSdkMutex commit_mu_;
  // Epoch-ordered retire list (oldest first), guarded by commit_mu_.
  RetiredVersion* retired_head_ = nullptr;
  RetiredVersion* retired_tail_ = nullptr;

  // Stats (relaxed atomics: written under commit_mu_, read anywhere).
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> versions_created_{0};
  std::atomic<uint64_t> versions_retired_{0};
  std::atomic<uint64_t> versions_reclaimed_{0};
  std::atomic<uint64_t> cow_bytes_{0};
  std::atomic<uint64_t> reclaimed_bytes_{0};
};

}  // namespace sgxb::txn

#endif  // SGXB_TXN_VERSIONED_DB_H_
