// Global commit epoch and epoch-based reclamation registry (docs/htap.md).
//
// Snapshot scans pin the current commit epoch into a registry slot;
// committers advance the epoch and retire superseded version chunks.  A
// retired chunk is reclaimable once every pinned slot holds an epoch at or
// past the retiring commit — from then on no snapshot can ever walk to it
// (new pins always land at or past the current epoch).
//
// The pin protocol is the classic epoch-based-reclamation handshake: the
// reader publishes a candidate epoch seq_cst and re-reads the global epoch
// seq_cst until both agree.  Both sides' seq_cst accesses put the slot
// publish and the committer's MinPinned() scan into one total order, so a
// committer either observes the pin or published an epoch the reader will
// observe and re-pin — there is no window where a scan runs at epoch E
// while the committer believes nothing at E is live.

#ifndef SGXB_TXN_EPOCH_H_
#define SGXB_TXN_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace sgxb::txn {

class EpochRegistry {
 public:
  /// Concurrent pinned snapshots; chosen to cover the serving layer's
  /// admission bound (obs::kMaxMetricDomains = 64) with headroom.
  static constexpr int kMaxSnapshots = 128;
  /// Slot value meaning "free" — also what MinPinned() returns when no
  /// snapshot is pinned (it compares greater than every real epoch, so
  /// the reclaim condition min_pinned >= retire_epoch holds vacuously).
  static constexpr uint64_t kIdle = ~0ull;

  EpochRegistry() = default;
  EpochRegistry(const EpochRegistry&) = delete;
  EpochRegistry& operator=(const EpochRegistry&) = delete;

  /// \brief The latest published commit epoch (0 before any commit).
  uint64_t current() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief Publishes `epoch` as the new commit epoch. Call under the
  /// owning table's commit latch with strictly increasing values.
  void Publish(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_seq_cst);
  }

  /// \brief Claims a slot and pins the current epoch into it. Returns the
  /// slot index and writes the pinned epoch to `*epoch_out`, or returns
  /// -1 with all kMaxSnapshots slots taken.
  int Pin(uint64_t* epoch_out) {
    for (int s = 0; s < kMaxSnapshots; ++s) {
      uint64_t expected = kIdle;
      uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if (!slots_[s].v.compare_exchange_strong(expected, e,
                                               std::memory_order_seq_cst)) {
        continue;  // slot taken; try the next one
      }
      // Handshake: if a commit published a newer epoch after we read `e`
      // but possibly before it could observe our pin, move the pin
      // forward and re-check. Pinning a newer epoch is always safe (it
      // only makes reclamation more conservative for others, and this
      // snapshot simply observes the newer committed state).
      for (;;) {
        const uint64_t cur = epoch_.load(std::memory_order_seq_cst);
        if (cur == e) break;
        e = cur;
        slots_[s].v.store(e, std::memory_order_seq_cst);
      }
      *epoch_out = e;
      return s;
    }
    return -1;
  }

  /// \brief Releases a pinned slot (frees it for other snapshots).
  void Unpin(int slot) {
    slots_[slot].v.store(kIdle, std::memory_order_seq_cst);
  }

  /// \brief The smallest pinned epoch, or kIdle with nothing pinned.
  /// Committers call this (after Publish) to gate reclamation.
  uint64_t MinPinned() const {
    uint64_t min = kIdle;
    for (const PaddedSlot& s : slots_) {
      const uint64_t e = s.v.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

  /// \brief Currently pinned snapshots (approximate under concurrency).
  int active_snapshots() const {
    int n = 0;
    for (const PaddedSlot& s : slots_) {
      if (s.v.load(std::memory_order_relaxed) != kIdle) ++n;
    }
    return n;
  }

 private:
  struct alignas(64) PaddedSlot {
    std::atomic<uint64_t> v{kIdle};
  };

  std::atomic<uint64_t> epoch_{0};
  PaddedSlot slots_[kMaxSnapshots];
};

/// \brief RAII epoch pin: holds one registry slot for the lifetime of a
/// snapshot scan. Movable so it can sit inside snapshot objects; an empty
/// handle (slots exhausted or moved-from) reports !ok().
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(EpochRegistry* registry) : registry_(registry) {
    slot_ = registry->Pin(&epoch_);
  }
  ~SnapshotHandle() { Release(); }

  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;
  SnapshotHandle(SnapshotHandle&& other) noexcept { *this = std::move(other); }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      slot_ = other.slot_;
      epoch_ = other.epoch_;
      other.slot_ = -1;
    }
    return *this;
  }

  bool ok() const { return slot_ >= 0; }
  uint64_t epoch() const { return epoch_; }

  void Release() {
    if (slot_ >= 0) registry_->Unpin(slot_);
    slot_ = -1;
  }

 private:
  EpochRegistry* registry_ = nullptr;
  int slot_ = -1;
  uint64_t epoch_ = 0;
};

}  // namespace sgxb::txn

#endif  // SGXB_TXN_EPOCH_H_
