// Task queues that distribute partition/join tasks between worker threads.
//
// The RHO join distributes its per-partition work items through a queue.
// The paper shows that the queue implementation is performance-critical
// inside enclaves: a mutex-guarded queue (original TEEBench design) loses
// 75% throughput under contention because the SDK mutex sleeps via OCALL,
// while a lock-free queue retains near-native performance (Section 4.4,
// Figure 10). All implementations here share the TaskQueue interface so
// joins can swap them.

#ifndef SGXB_SYNC_TASK_QUEUE_H_
#define SGXB_SYNC_TASK_QUEUE_H_

#include <cstddef>
#include <cstdint>

namespace sgxb {

/// \brief Which queue implementation a join should use (Figure 10 knob).
enum class TaskQueueKind {
  /// Bounded lock-free MPMC ring buffer (Vyukov); the paper's fix.
  kLockFree = 0,
  /// Guarded by a sleeping mutex (std::mutex natively, the simulated SGX
  /// SDK mutex inside an enclave); the original TEEBench design.
  kMutex = 1,
  /// Guarded by a userspace spin lock; an intermediate design point.
  kSpinLock = 2,
};

const char* TaskQueueKindToString(TaskQueueKind kind);

/// \brief A multi-producer/multi-consumer queue of 64-bit task ids.
class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  /// \brief Enqueues a task. Returns false if the queue is full.
  virtual bool Push(uint64_t task) = 0;

  /// \brief Dequeues a task into *task. Returns false if the queue is
  /// empty at the time of the call.
  virtual bool TryPop(uint64_t* task) = 0;

  /// \brief Approximate number of queued tasks (exact when quiescent).
  virtual size_t ApproxSize() const = 0;
};

}  // namespace sgxb

#endif  // SGXB_SYNC_TASK_QUEUE_H_
