// Lock-guarded task queues: the TEEBench-style mutex queue and a spin-lock
// variant. Templated over the lock type so the same code runs with
// std::mutex (native), the simulated SGX SDK mutex (enclave), or SpinLock.

#ifndef SGXB_SYNC_LOCKED_QUEUE_H_
#define SGXB_SYNC_LOCKED_QUEUE_H_

#include <deque>
#include <mutex>

#include "sync/spinlock.h"
#include "sync/task_queue.h"

namespace sgxb {

template <typename Lock>
class LockedTaskQueue final : public TaskQueue {
 public:
  LockedTaskQueue() = default;

  /// \brief Constructs around an external lock, e.g. a simulated SGX SDK
  /// mutex owned by an enclave. The lock must outlive the queue.
  explicit LockedTaskQueue(Lock* external_lock) : lock_(external_lock) {}

  bool Push(uint64_t task) override {
    std::lock_guard<Lock> guard(*lock_);
    queue_.push_back(task);
    return true;
  }

  bool TryPop(uint64_t* task) override {
    std::lock_guard<Lock> guard(*lock_);
    if (queue_.empty()) return false;
    *task = queue_.front();
    queue_.pop_front();
    return true;
  }

  size_t ApproxSize() const override {
    std::lock_guard<Lock> guard(*lock_);
    return queue_.size();
  }

 private:
  mutable Lock own_lock_;
  Lock* lock_ = &own_lock_;
  std::deque<uint64_t> queue_;
};

using MutexTaskQueue = LockedTaskQueue<std::mutex>;
using SpinLockTaskQueue = LockedTaskQueue<SpinLock>;

}  // namespace sgxb

#endif  // SGXB_SYNC_LOCKED_QUEUE_H_
