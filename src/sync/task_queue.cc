#include "sync/task_queue.h"

namespace sgxb {

const char* TaskQueueKindToString(TaskQueueKind kind) {
  switch (kind) {
    case TaskQueueKind::kLockFree:
      return "lock-free";
    case TaskQueueKind::kMutex:
      return "mutex";
    case TaskQueueKind::kSpinLock:
      return "spinlock";
  }
  return "unknown";
}

}  // namespace sgxb
