// Bounded lock-free MPMC queue (Dmitry Vyukov's design).
//
// Every cell carries a sequence number; producers and consumers claim
// positions with a single fetch_add-free CAS loop on head/tail counters and
// synchronize through the per-cell sequence, so neither side ever blocks on
// the OS. This is the stand-in for the Boost lock-free queue the paper uses
// as the RHO task queue (Section 4.4).

#ifndef SGXB_SYNC_LOCKFREE_QUEUE_H_
#define SGXB_SYNC_LOCKFREE_QUEUE_H_

#include <atomic>
#include <cassert>
#include <memory>

#include "common/types.h"
#include "sync/spinlock.h"
#include "sync/task_queue.h"

namespace sgxb {

class LockFreeTaskQueue final : public TaskQueue {
 public:
  /// \brief Capacity is rounded up to the next power of two.
  explicit LockFreeTaskQueue(size_t capacity) {
    size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool Push(uint64_t task) override {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = task;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(uint64_t* task) override {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *task = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t ApproxSize() const override {
    size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct alignas(kCacheLineSize) Cell {
    std::atomic<size_t> sequence;
    uint64_t value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_;
  alignas(kCacheLineSize) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace sgxb

#endif  // SGXB_SYNC_LOCKFREE_QUEUE_H_
