// Userspace spin locks.
//
// The paper replaces SGX SDK mutexes with spin locks or lock-free
// structures because an SDK mutex leaves the enclave to sleep, which costs
// two enclave transitions and collapses throughput under contention
// (Section 4.4). These locks never interact with the OS.

#ifndef SGXB_SYNC_SPINLOCK_H_
#define SGXB_SYNC_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sgxb {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

/// \brief Test-and-test-and-set spin lock. Satisfies the C++ Lockable
/// requirements so it can be used with std::lock_guard.
class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// \brief FIFO ticket spin lock; fair under contention, used for hash
/// bucket latches in the PHT join.
class TicketLock {
 public:
  void lock() {
    uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    // FIFO handoff means only the exact next ticket holder can make
    // progress, so unlike the TTAS lock above this one must eventually
    // yield: on an oversubscribed host a pure pause-spin livelocks while
    // the serving thread waits to be scheduled.
    int spins = 0;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      if (++spins < 1024) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  void unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> serving_{0};
};

}  // namespace sgxb

#endif  // SGXB_SYNC_SPINLOCK_H_
